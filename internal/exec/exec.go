// Package exec provides the relational tail shared by the bounded-plan
// executor (internal/core) and the conventional engine (internal/engine):
// projection, DISTINCT, hash aggregation with HAVING, sorting by output
// columns and LIMIT/OFFSET.
//
// The tail is a pull pipeline over batches of weighted rows (see
// internal/iter): Stream composes projection → DISTINCT → ORDER BY →
// LIMIT/OFFSET stages over any joined intermediate iterator. Stages that
// need nothing beyond the current batch (projection, DISTINCT, LIMIT)
// stream; aggregation holds only its groups and sorting is the single
// stage that must materialise. A LIMIT k query without ORDER BY
// therefore stops pulling from the join pipeline after k rows.
//
// Finish and FinishWeighted are the materialising wrappers over Stream
// for callers that already hold the full intermediate relation.
package exec

import (
	"fmt"
	"sort"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// Finish applies the relational tail of q (projection or aggregation,
// DISTINCT, HAVING, ORDER BY, LIMIT/OFFSET) to the joined intermediate
// rows and returns the final result rows.
func Finish(q *analyze.Query, rows []value.Row, layout *analyze.Layout) ([]value.Row, error) {
	return FinishWeighted(q, rows, nil, layout)
}

// FinishWeighted is Finish for weighted intermediate rows: weights[i]
// says how many identical base-row combinations rows[i] stands for. The
// bounded executor produces weighted rows because constraint indices
// store only distinct partial tuples; the weights restore SQL bag
// semantics. A nil weights slice means all weights are 1.
func FinishWeighted(q *analyze.Query, rows []value.Row, weights []int64, layout *analyze.Layout) ([]value.Row, error) {
	out, _, err := iter.Collect(Stream(q, iter.FromRows(rows, weights), layout))
	return out, err
}

// Stream composes the relational tail of q over an iterator of joined
// intermediate rows. The returned iterator yields final result rows
// (weight-free: bag multiplicities are expanded by projection and
// consumed by aggregation). Closing it early — or exhausting a LIMIT —
// stops pulling from in.
func Stream(q *analyze.Query, in iter.Iterator, layout *analyze.Layout) iter.Iterator {
	var it iter.Iterator
	if q.IsAgg {
		it = &aggIter{q: q, layout: layout, in: in}
	} else {
		it = &projectIter{q: q, layout: layout, in: in}
	}
	if q.Distinct {
		it = &distinctIter{in: it}
	}
	if len(q.OrderBy) > 0 {
		it = &sortIter{in: it, keys: q.OrderBy}
	}
	if q.Limit != nil || q.Offset != nil {
		it = &clipIter{in: it, limit: q.Limit, offset: q.Offset}
	}
	return it
}

// projectIter evaluates the output expressions per row, replicating each
// projected row by its bag weight. Under DISTINCT the weights are
// irrelevant (duplicates collapse downstream) and each row is emitted
// once.
type projectIter struct {
	q      *analyze.Query
	layout *analyze.Layout
	in     iter.Iterator
	buf    iter.Batch
}

func (p *projectIter) Open() error  { return p.in.Open() }
func (p *projectIter) Close() error { return p.in.Close() }

func (p *projectIter) Next(b *iter.Batch) (bool, error) {
	b.Reset()
	for b.Len() == 0 {
		ok, err := p.in.Next(&p.buf)
		if err != nil || !ok {
			return b.Len() > 0, err
		}
		for ri, r := range p.buf.Rows {
			res := make(value.Row, len(p.q.Outputs))
			for i, o := range p.q.Outputs {
				v, err := analyze.Eval(o.Expr, r, p.layout)
				if err != nil {
					return false, err
				}
				res[i] = v
			}
			w := p.buf.Weight(ri)
			if p.q.Distinct {
				w = 1
			}
			for ; w > 0; w-- {
				b.Append(res, 1)
			}
		}
	}
	return true, nil
}

// distinctIter drops rows already seen, preserving first-occurrence
// order across batches.
type distinctIter struct {
	in   iter.Iterator
	seen map[string]struct{}
	buf  iter.Batch
	key  []byte
}

func (d *distinctIter) Open() error {
	d.seen = make(map[string]struct{})
	return d.in.Open()
}
func (d *distinctIter) Close() error { return d.in.Close() }

func (d *distinctIter) Next(b *iter.Batch) (bool, error) {
	b.Reset()
	for b.Len() == 0 {
		ok, err := d.in.Next(&d.buf)
		if err != nil || !ok {
			return b.Len() > 0, err
		}
		for _, r := range d.buf.Rows {
			d.key = value.AppendRowKey(d.key[:0], r, nil)
			if _, dup := d.seen[string(d.key)]; dup {
				continue
			}
			d.seen[string(d.key)] = struct{}{}
			b.Append(r, 1)
		}
	}
	return true, nil
}

// sortIter is the one blocking stage: it drains its input, sorts and
// re-streams.
type sortIter struct {
	in   iter.Iterator
	keys []analyze.OrderSpec
	out  iter.Iterator
}

func (s *sortIter) Open() error { return s.in.Open() }

func (s *sortIter) Close() error {
	if s.out != nil {
		s.out.Close()
	}
	return s.in.Close()
}

func (s *sortIter) Next(b *iter.Batch) (bool, error) {
	if s.out == nil {
		rows, _, err := drain(s.in)
		if err != nil {
			return false, err
		}
		if err := SortRows(rows, s.keys); err != nil {
			return false, err
		}
		s.out = iter.FromRows(rows, nil)
	}
	return s.out.Next(b)
}

// clipIter applies OFFSET then LIMIT, and stops pulling once the limit
// is reached — the early-termination point of the pipeline.
type clipIter struct {
	in      iter.Iterator
	limit   *int
	offset  *int
	skipped int
	emitted int
	done    bool
	buf     iter.Batch
}

func (c *clipIter) Open() error  { return c.in.Open() }
func (c *clipIter) Close() error { return c.in.Close() }

func (c *clipIter) Next(b *iter.Batch) (bool, error) {
	b.Reset()
	if c.done {
		return false, nil
	}
	for b.Len() == 0 {
		if c.limit != nil && c.emitted >= *c.limit {
			c.done = true
			return false, nil
		}
		ok, err := c.in.Next(&c.buf)
		if err != nil {
			return false, err
		}
		if !ok {
			c.done = true
			return b.Len() > 0, nil
		}
		for _, r := range c.buf.Rows {
			if c.offset != nil && c.skipped < *c.offset {
				c.skipped++
				continue
			}
			if c.limit != nil && c.emitted >= *c.limit {
				c.done = true
				break
			}
			b.Append(r, 1)
			c.emitted++
		}
	}
	return true, nil
}

// drain collects the remaining rows of an already opened iterator
// (weights, if any, are expanded — callers here are weight-free stages).
func drain(it iter.Iterator) ([]value.Row, []int64, error) {
	var rows []value.Row
	var b iter.Batch
	for {
		ok, err := it.Next(&b)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return rows, nil, nil
		}
		rows = append(rows, b.Rows...)
	}
}

// aggIter performs hash aggregation: it folds every input batch into its
// group table (holding only one state per group, never the input) and
// streams the finalised groups.
type aggIter struct {
	q      *analyze.Query
	layout *analyze.Layout
	in     iter.Iterator
	out    iter.Iterator
	buf    iter.Batch
}

func (a *aggIter) Open() error { return a.in.Open() }

func (a *aggIter) Close() error {
	if a.out != nil {
		a.out.Close()
	}
	return a.in.Close()
}

func (a *aggIter) Next(b *iter.Batch) (bool, error) {
	if a.out == nil {
		acc := newAggregator(a.q, a.layout)
		for {
			ok, err := a.in.Next(&a.buf)
			if err != nil {
				return false, err
			}
			if !ok {
				break
			}
			for ri, r := range a.buf.Rows {
				if err := acc.add(r, a.buf.Weight(ri)); err != nil {
					return false, err
				}
			}
		}
		rows, err := acc.result()
		if err != nil {
			return false, err
		}
		a.out = iter.FromRows(rows, nil)
	}
	return a.out.Next(b)
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count   int64
	sum     float64
	sumInt  int64
	intOnly bool
	// intPrefixMax / intPrefixMin are the extremes of the int64 running
	// sum over this state's fold sequence (0 for the empty prefix). The
	// serial fold falls back to float64 the moment any prefix overflows;
	// a merged state reproduces that exactly by re-basing the source's
	// prefix extremes on the destination's running sum (see mergeState) —
	// comparing totals alone would miss a mid-chunk overflow that a
	// later term cancels.
	intPrefixMax, intPrefixMin int64
	min, max                   value.Value
	distinct                   map[string]struct{}
	// distinctVals holds the distinct values in first-appearance order,
	// so merging two states (parallel aggregation) can re-fold the other
	// state's values deterministically.
	distinctVals []value.Value
	// trackTerms makes SUM/AVG folds record their float terms in input
	// order (terms). The parallel aggregator sets it so that merged
	// states can recompute the float sum by replaying the terms in the
	// serial fold order — float addition is not associative, so merging
	// partial sums would drift from the serial result in the last ulp.
	trackTerms bool
	terms      []float64
	nonEmpty   bool
}

type group struct {
	keys value.Row
	aggs []*aggState
}

// aggregator is the hash-aggregation state: groups keyed by the GROUP BY
// expressions, in first-appearance order.
//
// With no GROUP BY, a single group is produced even for empty input
// (COUNT(*) over an empty relation is 0), matching SQL semantics.
type aggregator struct {
	q      *analyze.Query
	layout *analyze.Layout
	groups map[string]*group
	order  []string
	kb     []byte // reused group-key encoding buffer
	// trackTerms propagates to every aggState (see aggState.trackTerms);
	// the parallel aggregator sets it.
	trackTerms bool
}

func newAggregator(q *analyze.Query, layout *analyze.Layout) *aggregator {
	return &aggregator{q: q, layout: layout, groups: make(map[string]*group)}
}

func (a *aggregator) newGroup(keys value.Row) *group {
	g := &group{keys: keys, aggs: make([]*aggState, len(a.q.Aggs))}
	for i, spec := range a.q.Aggs {
		st := &aggState{intOnly: true, trackTerms: a.trackTerms}
		if spec.Distinct {
			st.distinct = make(map[string]struct{})
		}
		g.aggs[i] = st
	}
	return g
}

// add folds one base row (with bag multiplicity w) into its group.
func (a *aggregator) add(r value.Row, w int64) error {
	keys := make(value.Row, len(a.q.GroupBy))
	for i, ge := range a.q.GroupBy {
		v, err := analyze.Eval(ge, r, a.layout)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	a.kb = value.AppendRowKey(a.kb[:0], keys, nil)
	g, ok := a.groups[string(a.kb)]
	if !ok {
		k := string(a.kb)
		g = a.newGroup(keys)
		a.groups[k] = g
		a.order = append(a.order, k)
	}
	for i, spec := range a.q.Aggs {
		if err := accumulate(g.aggs[i], spec, r, w, a.layout); err != nil {
			return err
		}
	}
	return nil
}

// result finalises the groups, filters with HAVING and evaluates the
// output expressions against the post-aggregation rows.
func (a *aggregator) result() ([]value.Row, error) {
	if len(a.q.GroupBy) == 0 && len(a.groups) == 0 {
		a.groups[""] = a.newGroup(nil)
		a.order = append(a.order, "")
	}
	// Post-aggregation rows: [group keys..., aggregate values...].
	postLayout := analyze.NewLayout() // PostRef evaluation indexes rows directly
	out := make([]value.Row, 0, len(a.groups))
	for _, k := range a.order {
		g := a.groups[k]
		post := make(value.Row, 0, len(a.q.GroupBy)+len(a.q.Aggs))
		post = append(post, g.keys...)
		for i, spec := range a.q.Aggs {
			post = append(post, finalize(g.aggs[i], spec))
		}
		if a.q.Having != nil {
			keep, err := analyze.EvalBool(a.q.Having, post, postLayout)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		res := make(value.Row, len(a.q.Outputs))
		for i, o := range a.q.Outputs {
			v, err := analyze.Eval(o.Expr, post, postLayout)
			if err != nil {
				return nil, err
			}
			res[i] = v
		}
		out = append(out, res)
	}
	return out, nil
}

// accumulate folds one base row (with bag multiplicity w) into an
// aggregate state.
func accumulate(st *aggState, spec analyze.AggSpec, row value.Row, w int64, layout *analyze.Layout) error {
	if spec.Star {
		st.count += w
		st.nonEmpty = true
		return nil
	}
	v, err := analyze.Eval(spec.Arg, row, layout)
	if err != nil {
		return err
	}
	return foldValue(st, spec, v, w)
}

// foldValue folds one already-evaluated argument value into an aggregate
// state: NULL skipping and DISTINCT filtering, then the shared fold. It
// is the common tail of the row accumulate and the columnar fold.
func foldValue(st *aggState, spec analyze.AggSpec, v value.Value, w int64) error {
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	if spec.Distinct {
		k := value.Key([]value.Value{v})
		if _, dup := st.distinct[k]; dup {
			return nil
		}
		st.distinct[k] = struct{}{}
		st.distinctVals = append(st.distinctVals, v)
		w = 1 // DISTINCT counts each value once regardless of multiplicity
	}
	return st.fold(v, w, spec)
}

// fold accumulates one non-NULL value with multiplicity w (DISTINCT
// filtering already applied). It is shared by per-row accumulation and
// by the distinct-set replay of mergeState.
func (st *aggState) fold(v value.Value, w int64, spec analyze.AggSpec) error {
	st.count += w
	switch spec.Func {
	case sqlparser.AggCount: // nothing more to track
	default:
		if f, ok := v.AsFloat(); ok {
			st.sum += f * float64(w)
			if st.trackTerms && (spec.Func == sqlparser.AggSum || spec.Func == sqlparser.AggAvg) {
				st.terms = append(st.terms, f*float64(w))
			}
		} else if spec.Func == sqlparser.AggSum || spec.Func == sqlparser.AggAvg {
			return fmt.Errorf("exec: %s over non-numeric %v", spec.Func, v.K)
		}
		if v.K == value.Int && st.intOnly {
			// Keep the exact int64 running sum while it fits; on
			// overflow fall back permanently to the float64 sum already
			// accumulated above (see finalize for the precision trade).
			if prod, ok := value.MulInt64(v.I, w); ok {
				if next, ok := value.AddInt64(st.sumInt, prod); ok {
					st.sumInt = next
					if next > st.intPrefixMax {
						st.intPrefixMax = next
					}
					if next < st.intPrefixMin {
						st.intPrefixMin = next
					}
				} else {
					st.intOnly = false
				}
			} else {
				st.intOnly = false
			}
		} else if v.K != value.Int {
			st.intOnly = false
		}
		if !st.nonEmpty {
			st.min, st.max = v, v
		} else {
			if c, err := value.Compare(v, st.min); err == nil && c < 0 {
				st.min = v
			}
			if c, err := value.Compare(v, st.max); err == nil && c > 0 {
				st.max = v
			}
		}
	}
	st.nonEmpty = true
	return nil
}

// finalize extracts the aggregate's value. Integer SUM stays exact
// int64 arithmetic until the running sum would wrap; from then on the
// group's result is the float64 sum — immune to wraparound, at the cost
// of rounding once past 2^53 (values above ~9.2e18 could not be
// represented as int64 anyway).
func finalize(st *aggState, spec analyze.AggSpec) value.Value {
	switch spec.Func {
	case sqlparser.AggCount:
		return value.NewInt(st.count)
	case sqlparser.AggSum:
		if !st.nonEmpty {
			return value.NewNull()
		}
		if st.intOnly {
			return value.NewInt(st.sumInt)
		}
		return value.NewFloat(st.sum)
	case sqlparser.AggAvg:
		if st.count == 0 {
			return value.NewNull()
		}
		return value.NewFloat(st.sum / float64(st.count))
	case sqlparser.AggMin:
		if !st.nonEmpty {
			return value.NewNull()
		}
		return st.min
	case sqlparser.AggMax:
		if !st.nonEmpty {
			return value.NewNull()
		}
		return st.max
	default:
		return value.NewNull()
	}
}

// Dedup removes duplicate rows, preserving first-occurrence order.
func Dedup(rows []value.Row) []value.Row {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0:0]
	var key []byte
	for _, r := range rows {
		key = value.AppendRowKey(key[:0], r, nil)
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		out = append(out, r)
	}
	return out
}

// SortRows sorts result rows in place by the given output columns. The
// sort is stable so that equal keys preserve input order.
func SortRows(rows []value.Row, keys []analyze.OrderSpec) error {
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c, err := value.Compare(rows[i][k.Col], rows[j][k.Col])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

// Clip applies OFFSET then LIMIT.
func Clip(rows []value.Row, limit, offset *int) []value.Row {
	if offset != nil {
		if *offset >= len(rows) {
			return nil
		}
		rows = rows[*offset:]
	}
	if limit != nil && *limit < len(rows) {
		rows = rows[:*limit]
	}
	return rows
}
