// Package exec provides the physical operators shared by the bounded-plan
// executor (internal/core) and the conventional engine (internal/engine):
// projection, DISTINCT, hash aggregation with HAVING, sorting by output
// columns and LIMIT/OFFSET. Both executors produce a joined intermediate
// relation (rows over an analyze.Layout); this package turns it into the
// final result rows.
package exec

import (
	"fmt"
	"sort"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// Finish applies the relational tail of q (projection or aggregation,
// DISTINCT, HAVING, ORDER BY, LIMIT/OFFSET) to the joined intermediate
// rows and returns the final result rows.
func Finish(q *analyze.Query, rows []value.Row, layout *analyze.Layout) ([]value.Row, error) {
	return FinishWeighted(q, rows, nil, layout)
}

// FinishWeighted is Finish for weighted intermediate rows: weights[i]
// says how many identical base-row combinations rows[i] stands for. The
// bounded executor produces weighted rows because constraint indices
// store only distinct partial tuples; the weights restore SQL bag
// semantics. A nil weights slice means all weights are 1.
func FinishWeighted(q *analyze.Query, rows []value.Row, weights []int64, layout *analyze.Layout) ([]value.Row, error) {
	var out []value.Row
	var err error
	switch {
	case q.IsAgg:
		out, err = aggregate(q, rows, weights, layout)
	case q.Distinct || weights == nil:
		// DISTINCT collapses duplicates anyway; weights are irrelevant.
		out, err = project(q, rows, layout)
	default:
		// Bag semantics: replicate each projected row by its weight.
		out, err = projectWeighted(q, rows, weights, layout)
	}
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		out = Dedup(out)
	}
	if len(q.OrderBy) > 0 {
		if err := SortRows(out, q.OrderBy); err != nil {
			return nil, err
		}
	}
	return Clip(out, q.Limit, q.Offset), nil
}

// projectWeighted projects every row and emits weight copies of it.
func projectWeighted(q *analyze.Query, rows []value.Row, weights []int64, layout *analyze.Layout) ([]value.Row, error) {
	out := make([]value.Row, 0, len(rows))
	for ri, r := range rows {
		res := make(value.Row, len(q.Outputs))
		for i, o := range q.Outputs {
			v, err := analyze.Eval(o.Expr, r, layout)
			if err != nil {
				return nil, err
			}
			res[i] = v
		}
		w := weights[ri]
		for ; w > 0; w-- {
			out = append(out, res)
		}
	}
	return out, nil
}

// project evaluates the output expressions for every row.
func project(q *analyze.Query, rows []value.Row, layout *analyze.Layout) ([]value.Row, error) {
	out := make([]value.Row, 0, len(rows))
	for _, r := range rows {
		res := make(value.Row, len(q.Outputs))
		for i, o := range q.Outputs {
			v, err := analyze.Eval(o.Expr, r, layout)
			if err != nil {
				return nil, err
			}
			res[i] = v
		}
		out = append(out, res)
	}
	return out, nil
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count    int64
	sum      float64
	sumInt   int64
	intOnly  bool
	min, max value.Value
	distinct map[string]struct{}
	nonEmpty bool
}

// aggregate performs hash aggregation: group rows by the GROUP BY
// expressions, evaluate the aggregates per group, filter with HAVING and
// evaluate the output expressions against the post-aggregation rows.
// weights (nil = all ones) give each row's bag multiplicity.
//
// With no GROUP BY, a single group is produced even for empty input
// (COUNT(*) over an empty relation is 0), matching SQL semantics.
func aggregate(q *analyze.Query, rows []value.Row, weights []int64, layout *analyze.Layout) ([]value.Row, error) {
	type group struct {
		keys value.Row
		aggs []*aggState
	}
	groups := make(map[string]*group)
	var order []string

	newGroup := func(keys value.Row) *group {
		g := &group{keys: keys, aggs: make([]*aggState, len(q.Aggs))}
		for i, spec := range q.Aggs {
			st := &aggState{intOnly: true}
			if spec.Distinct {
				st.distinct = make(map[string]struct{})
			}
			g.aggs[i] = st
		}
		return g
	}

	for ri, r := range rows {
		w := int64(1)
		if weights != nil {
			w = weights[ri]
		}
		keys := make(value.Row, len(q.GroupBy))
		for i, ge := range q.GroupBy {
			v, err := analyze.Eval(ge, r, layout)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		k := value.Key(keys)
		g, ok := groups[k]
		if !ok {
			g = newGroup(keys)
			groups[k] = g
			order = append(order, k)
		}
		for i, spec := range q.Aggs {
			if err := accumulate(g.aggs[i], spec, r, w, layout); err != nil {
				return nil, err
			}
		}
	}
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = newGroup(nil)
		order = append(order, "")
	}

	// Post-aggregation rows: [group keys..., aggregate values...].
	postLayout := analyze.NewLayout() // PostRef evaluation indexes rows directly
	out := make([]value.Row, 0, len(groups))
	for _, k := range order {
		g := groups[k]
		post := make(value.Row, 0, len(q.GroupBy)+len(q.Aggs))
		post = append(post, g.keys...)
		for i, spec := range q.Aggs {
			post = append(post, finalize(g.aggs[i], spec))
		}
		if q.Having != nil {
			keep, err := analyze.EvalBool(q.Having, post, postLayout)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		res := make(value.Row, len(q.Outputs))
		for i, o := range q.Outputs {
			v, err := analyze.Eval(o.Expr, post, postLayout)
			if err != nil {
				return nil, err
			}
			res[i] = v
		}
		out = append(out, res)
	}
	return out, nil
}

// accumulate folds one base row (with bag multiplicity w) into an
// aggregate state.
func accumulate(st *aggState, spec analyze.AggSpec, row value.Row, w int64, layout *analyze.Layout) error {
	if spec.Star {
		st.count += w
		st.nonEmpty = true
		return nil
	}
	v, err := analyze.Eval(spec.Arg, row, layout)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	if spec.Distinct {
		k := value.Key([]value.Value{v})
		if _, dup := st.distinct[k]; dup {
			return nil
		}
		st.distinct[k] = struct{}{}
		w = 1 // DISTINCT counts each value once regardless of multiplicity
	}
	st.count += w
	switch spec.Func {
	case sqlparser.AggCount: // nothing more to track
	default:
		if f, ok := v.AsFloat(); ok {
			st.sum += f * float64(w)
		} else if spec.Func == sqlparser.AggSum || spec.Func == sqlparser.AggAvg {
			return fmt.Errorf("exec: %s over non-numeric %v", spec.Func, v.K)
		}
		if v.K == value.Int {
			st.sumInt += v.I * w
		} else {
			st.intOnly = false
		}
		if !st.nonEmpty {
			st.min, st.max = v, v
		} else {
			if c, err := value.Compare(v, st.min); err == nil && c < 0 {
				st.min = v
			}
			if c, err := value.Compare(v, st.max); err == nil && c > 0 {
				st.max = v
			}
		}
	}
	st.nonEmpty = true
	return nil
}

// finalize extracts the aggregate's value.
func finalize(st *aggState, spec analyze.AggSpec) value.Value {
	switch spec.Func {
	case sqlparser.AggCount:
		return value.NewInt(st.count)
	case sqlparser.AggSum:
		if !st.nonEmpty {
			return value.NewNull()
		}
		if st.intOnly {
			return value.NewInt(st.sumInt)
		}
		return value.NewFloat(st.sum)
	case sqlparser.AggAvg:
		if st.count == 0 {
			return value.NewNull()
		}
		return value.NewFloat(st.sum / float64(st.count))
	case sqlparser.AggMin:
		if !st.nonEmpty {
			return value.NewNull()
		}
		return st.min
	case sqlparser.AggMax:
		if !st.nonEmpty {
			return value.NewNull()
		}
		return st.max
	default:
		return value.NewNull()
	}
}

// Dedup removes duplicate rows, preserving first-occurrence order.
func Dedup(rows []value.Row) []value.Row {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := value.Key(r)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

// SortRows sorts result rows in place by the given output columns. The
// sort is stable so that equal keys preserve input order.
func SortRows(rows []value.Row, keys []analyze.OrderSpec) error {
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c, err := value.Compare(rows[i][k.Col], rows[j][k.Col])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

// Clip applies OFFSET then LIMIT.
func Clip(rows []value.Row, limit, offset *int) []value.Row {
	if offset != nil {
		if *offset >= len(rows) {
			return nil
		}
		rows = rows[*offset:]
	}
	if limit != nil && *limit < len(rows) {
		rows = rows[:*limit]
	}
	return rows
}
