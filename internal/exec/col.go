package exec

import (
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/value"
)

// StreamCol composes the relational tail of q over a columnar iterator
// of joined intermediate rows. It is the vectorized sibling of Stream
// and yields identical row streams: projection and aggregation read
// column vectors directly (group keys and fused DISTINCT keys encode
// column-at-a-time), while ORDER BY, LIMIT/OFFSET and non-fusable
// DISTINCT reuse the row stages on the projected output.
func StreamCol(q *analyze.Query, in iter.ColIterator, layout *analyze.Layout) iter.Iterator {
	var it iter.Iterator
	if q.IsAgg {
		it = &colAggIter{q: q, layout: layout, in: in}
		if q.Distinct {
			it = &distinctIter{in: it}
		}
	} else {
		p := &colProjectIter{q: q, layout: layout, in: in}
		p.fuseDistinct = q.Distinct && p.resolveOutSlots()
		it = p
		if q.Distinct && !p.fuseDistinct {
			it = &distinctIter{in: it}
		}
	}
	if len(q.OrderBy) > 0 {
		it = &sortIter{in: it, keys: q.OrderBy}
	}
	if q.Limit != nil || q.Offset != nil {
		it = &clipIter{in: it, limit: q.Limit, offset: q.Offset}
	}
	return it
}

// colProjectIter evaluates the output expressions over column vectors.
// Pure column references read the vectors directly; any other output
// expression evaluates against a scratch row view, so semantics (and
// errors) match the row projectIter exactly. When every output is a
// column reference and the query is DISTINCT, duplicate elimination
// fuses into the projection with column-at-a-time key encoding.
type colProjectIter struct {
	q      *analyze.Query
	layout *analyze.Layout
	in     iter.ColIterator
	cb     iter.ColBatch

	outSlots     []int // per output: batch column, or -1 for scalar eval
	resolved     bool
	scratch      value.Row
	fuseDistinct bool
	seen         map[string]struct{}
	keyBufs      [][]byte
	keySlots     []int
}

// resolveOutSlots computes the per-output column slots; it reports
// whether every output is a plain column reference.
func (p *colProjectIter) resolveOutSlots() bool {
	if !p.resolved {
		p.resolved = true
		p.outSlots = make([]int, len(p.q.Outputs))
		for i, o := range p.q.Outputs {
			p.outSlots[i] = -1
			if c, ok := o.Expr.(*analyze.ColRef); ok {
				if s, ok := p.layout.Slot(c.ID); ok {
					p.outSlots[i] = s
				}
			}
		}
	}
	for _, s := range p.outSlots {
		if s < 0 {
			return false
		}
	}
	return true
}

func (p *colProjectIter) Open() error {
	p.resolveOutSlots()
	if p.fuseDistinct {
		p.seen = make(map[string]struct{})
		p.keySlots = p.outSlots
	}
	return p.in.Open()
}

func (p *colProjectIter) Close() error { return p.in.Close() }

func (p *colProjectIter) Next(b *iter.Batch) (bool, error) {
	b.Reset()
	for b.Len() == 0 {
		ok, err := p.in.NextCols(&p.cb)
		if err != nil || !ok {
			return b.Len() > 0, err
		}
		if p.fuseDistinct {
			if err := p.emitDistinct(b); err != nil {
				return false, err
			}
			continue
		}
		n := p.cb.Len()
		for i := 0; i < n; i++ {
			q := p.cb.Index(i)
			res := make(value.Row, len(p.q.Outputs))
			for oi, o := range p.q.Outputs {
				if s := p.outSlots[oi]; s >= 0 {
					res[oi] = p.cb.Col(s).Value(q)
					continue
				}
				if p.scratch == nil {
					p.scratch = make(value.Row, p.cb.Width())
				}
				p.cb.ReadRow(q, p.scratch)
				v, err := analyze.Eval(o.Expr, p.scratch, p.layout)
				if err != nil {
					return false, err
				}
				res[oi] = v
			}
			w := p.cb.Weight(q)
			if p.q.Distinct {
				w = 1
			}
			for ; w > 0; w-- {
				b.Append(res, 1)
			}
		}
	}
	return true, nil
}

// emitDistinct projects and deduplicates in one pass: the output-column
// keys of the whole batch encode column-at-a-time, and only first
// occurrences materialise result rows.
func (p *colProjectIter) emitDistinct(b *iter.Batch) error {
	np := p.cb.Rows()
	for len(p.keyBufs) < np {
		p.keyBufs = append(p.keyBufs, nil)
	}
	for i := 0; i < np; i++ {
		p.keyBufs[i] = p.keyBufs[i][:0]
	}
	p.cb.AppendRowKeys(p.keySlots, p.keyBufs)
	n := p.cb.Len()
	for i := 0; i < n; i++ {
		q := p.cb.Index(i)
		if _, dup := p.seen[string(p.keyBufs[q])]; dup {
			continue
		}
		p.seen[string(p.keyBufs[q])] = struct{}{}
		res := make(value.Row, len(p.outSlots))
		for oi, s := range p.outSlots {
			res[oi] = p.cb.Col(s).Value(q)
		}
		b.Append(res, 1)
	}
	return nil
}

// colAggIter is hash aggregation over column vectors: group keys encode
// column-at-a-time when every GROUP BY expression is a column reference,
// and aggregate arguments that are column references fold straight from
// the vectors. Everything else falls back to scalar evaluation over a
// row view. Grouping order, fold order per state and finalisation reuse
// the row aggregator, so results are identical.
type colAggIter struct {
	q      *analyze.Query
	layout *analyze.Layout
	in     iter.ColIterator
	out    iter.Iterator
	cb     iter.ColBatch

	keySlots []int // nil unless every GROUP BY expr is a materialised ColRef
	argSlots []int // per agg spec: batch column, or -1 for scalar eval
	keyBufs  [][]byte
	gptrs    []*group
	scratch  value.Row
}

func (a *colAggIter) Open() error {
	a.keySlots = make([]int, 0, len(a.q.GroupBy))
	for _, ge := range a.q.GroupBy {
		c, ok := ge.(*analyze.ColRef)
		if !ok {
			a.keySlots = nil
			break
		}
		s, ok := a.layout.Slot(c.ID)
		if !ok {
			a.keySlots = nil
			break
		}
		a.keySlots = append(a.keySlots, s)
	}
	a.argSlots = make([]int, len(a.q.Aggs))
	for i, spec := range a.q.Aggs {
		a.argSlots[i] = -1
		if spec.Star {
			continue
		}
		if c, ok := spec.Arg.(*analyze.ColRef); ok {
			if s, ok := a.layout.Slot(c.ID); ok {
				a.argSlots[i] = s
			}
		}
	}
	return a.in.Open()
}

func (a *colAggIter) Close() error {
	if a.out != nil {
		a.out.Close()
	}
	return a.in.Close()
}

func (a *colAggIter) Next(b *iter.Batch) (bool, error) {
	if a.out == nil {
		acc := newAggregator(a.q, a.layout)
		for {
			ok, err := a.in.NextCols(&a.cb)
			if err != nil {
				return false, err
			}
			if !ok {
				break
			}
			if err := a.foldBatch(acc); err != nil {
				return false, err
			}
		}
		rows, err := acc.result()
		if err != nil {
			return false, err
		}
		a.out = iter.FromRows(rows, nil)
	}
	return a.out.Next(b)
}

func (a *colAggIter) foldBatch(acc *aggregator) error {
	cb := &a.cb
	n := cb.Len()
	if n == 0 {
		return nil
	}
	if a.scratch == nil || len(a.scratch) < cb.Width() {
		a.scratch = make(value.Row, cb.Width())
	}

	// Assign every live row to its group, creating groups in
	// first-appearance order.
	gs := a.gptrs[:0]
	if a.keySlots != nil {
		np := cb.Rows()
		for len(a.keyBufs) < np {
			a.keyBufs = append(a.keyBufs, nil)
		}
		for i := 0; i < np; i++ {
			a.keyBufs[i] = a.keyBufs[i][:0]
		}
		cb.AppendRowKeys(a.keySlots, a.keyBufs)
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			g, ok := acc.groups[string(a.keyBufs[q])]
			if !ok {
				keys := make(value.Row, len(a.keySlots))
				for j, s := range a.keySlots {
					keys[j] = cb.Col(s).Value(q)
				}
				g = acc.newGroup(keys)
				k := string(a.keyBufs[q])
				acc.groups[k] = g
				acc.order = append(acc.order, k)
			}
			gs = append(gs, g)
		}
	} else {
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			cb.ReadRow(q, a.scratch)
			keys := make(value.Row, len(a.q.GroupBy))
			for j, ge := range a.q.GroupBy {
				v, err := analyze.Eval(ge, a.scratch, a.layout)
				if err != nil {
					return err
				}
				keys[j] = v
			}
			acc.kb = value.AppendRowKey(acc.kb[:0], keys, nil)
			g, ok := acc.groups[string(acc.kb)]
			if !ok {
				k := string(acc.kb)
				g = acc.newGroup(keys)
				acc.groups[k] = g
				acc.order = append(acc.order, k)
			}
			gs = append(gs, g)
		}
	}
	a.gptrs = gs

	// Fold each aggregate spec column-at-a-time. States are disjoint per
	// (group, spec), so per-state fold order equals the row order the
	// scalar aggregator uses.
	for si, spec := range a.q.Aggs {
		switch {
		case spec.Star:
			for i := 0; i < n; i++ {
				st := gs[i].aggs[si]
				st.count += cb.Weight(cb.Index(i))
				st.nonEmpty = true
			}
		case a.argSlots[si] >= 0:
			col := cb.Col(a.argSlots[si])
			for i := 0; i < n; i++ {
				q := cb.Index(i)
				if err := foldValue(gs[i].aggs[si], spec, col.Value(q), cb.Weight(q)); err != nil {
					return err
				}
			}
		default:
			for i := 0; i < n; i++ {
				q := cb.Index(i)
				cb.ReadRow(q, a.scratch)
				v, err := analyze.Eval(spec.Arg, a.scratch, a.layout)
				if err != nil {
					return err
				}
				if err := foldValue(gs[i].aggs[si], spec, v, cb.Weight(q)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
