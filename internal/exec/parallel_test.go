package exec

// The parallel relational tail must be bit-identical to the sequential
// one: same group order, same values (including non-associative float
// sums, replayed in serial term order), same DISTINCT handling across
// chunk boundaries. These tests drive FinishWeightedParallel over a
// generated relation large enough to split into many chunks.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// bigFixture builds t(g STRING, v INT, f FLOAT) with n rows of skewed
// groups, duplicate values (exercising DISTINCT dedup across chunks),
// NULLs, NaNs and near-MaxInt64 ints, plus bag weights.
func bigFixture(t *testing.T, sql string, n int) (*analyze.Query, *analyze.Layout, []value.Row, []int64) {
	t.Helper()
	db, err := schema.NewDatabase(schema.MustRelation("t",
		schema.Attribute{Name: "g", Kind: value.String},
		schema.Attribute{Name: "v", Kind: value.Int},
		schema.Attribute{Name: "f", Kind: value.Float},
	))
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.Analyze(stmt.Select, db)
	if err != nil {
		t.Fatal(err)
	}
	layout := analyze.NewLayout()
	for attr := 0; attr < 3; attr++ {
		layout.Add(analyze.ColID{Atom: 0, Attr: attr})
	}
	rng := rand.New(rand.NewSource(99))
	rows := make([]value.Row, n)
	weights := make([]int64, n)
	for i := range rows {
		g := value.NewString(fmt.Sprintf("g%d", rng.Intn(7)))
		var v value.Value
		switch rng.Intn(8) {
		case 0:
			v = value.NewNull()
		case 1:
			v = value.NewInt(math.MaxInt64 - int64(rng.Intn(3)))
		default:
			v = value.NewInt(int64(rng.Intn(5)))
		}
		var f value.Value
		switch rng.Intn(8) {
		case 0:
			f = value.NewFloat(math.NaN())
		case 1:
			f = value.NewNull()
		default:
			f = value.NewFloat(rng.Float64() * 100) // deliberately non-dyadic
		}
		rows[i] = value.Row{g, v, f}
		weights[i] = int64(1 + rng.Intn(3))
	}
	return q, layout, rows, weights
}

func checkParallelTail(t *testing.T, sql string) {
	t.Helper()
	q, layout, rows, weights := bigFixture(t, sql, 5000)
	want, err := FinishWeighted(q, rows, weights, layout)
	if err != nil {
		t.Fatalf("%s sequential: %v", sql, err)
	}
	for _, par := range []int{2, 5, 16} {
		got, err := FinishWeightedParallel(context.Background(), q, rows, weights, layout, par)
		if err != nil {
			t.Fatalf("%s par=%d: %v", sql, par, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s par=%d: %d rows, want %d", sql, par, len(got), len(want))
		}
		for i := range want {
			if value.Key(got[i]) != value.Key(want[i]) {
				t.Fatalf("%s par=%d row %d: %v, want %v (bit-identical including float sums)",
					sql, par, i, got[i], want[i])
			}
		}
	}
}

func TestParallelTailBitIdentical(t *testing.T) {
	for _, sql := range []string{
		"SELECT g, COUNT(*), SUM(v), MIN(f), MAX(f) FROM t GROUP BY g",
		"SELECT g, SUM(f), AVG(f) FROM t GROUP BY g",                     // non-associative float sums
		"SELECT g, COUNT(DISTINCT v), SUM(DISTINCT f) FROM t GROUP BY g", // distinct sets span chunks
		"SELECT g, SUM(v) FROM t GROUP BY g HAVING COUNT(*) > 10",
		"SELECT COUNT(*), SUM(v), AVG(f) FROM t", // single group, int overflow promotion
		"SELECT g, v FROM t",
		"SELECT DISTINCT g, v FROM t",
		"SELECT v, f FROM t ORDER BY 2 DESC, 1 LIMIT 40",
		"SELECT g, v FROM t LIMIT 25 OFFSET 13",
	} {
		checkParallelTail(t, sql)
	}
}

// TestMergeMidChunkOverflowCancelled pins the subtle overflow case: the
// serial fold overflows on a prefix that a later term cancels, so its
// int-exact path is gone for good even though the total fits int64. The
// merged state must reproduce that (via the re-based prefix extremes)
// and return the identical FLOAT, not a divergent INT.
func TestMergeMidChunkOverflowCancelled(t *testing.T) {
	db, err := schema.NewDatabase(schema.MustRelation("t",
		schema.Attribute{Name: "v", Kind: value.Int},
	))
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sqlparser.Parse("SELECT SUM(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.Analyze(stmt.Select, db)
	if err != nil {
		t.Fatal(err)
	}
	layout := analyze.NewLayout()
	layout.Add(analyze.ColID{Atom: 0, Attr: 0})
	// Serial: (MaxInt64-5) + 0 + 10 overflows → float64 forever. The +10
	// is cancelled by -10, so every chunk partial and the merged total fit
	// int64 — only the prefix extremes reveal the serial overflow.
	vals := []int64{math.MaxInt64 - 5, 0, 10, -10, 0, 0, 0, 0, 0}
	rows := make([]value.Row, len(vals))
	for i, v := range vals {
		rows[i] = value.Row{value.NewInt(v)}
	}
	want, err := FinishWeighted(q, rows, nil, layout)
	if err != nil {
		t.Fatal(err)
	}
	if want[0][0].K != value.Float {
		t.Fatalf("serial SUM kind = %v, want FLOAT (prefix overflow)", want[0][0].K)
	}
	for par := 2; par <= 8; par++ {
		got, err := FinishWeightedParallel(context.Background(), q, rows, nil, layout, par)
		if err != nil {
			t.Fatal(err)
		}
		if got[0][0] != want[0][0] {
			t.Fatalf("par=%d: SUM = %#v, want %#v (serial prefix overflow must survive the merge)",
				par, got[0][0], want[0][0])
		}
	}
}

// TestMergeStateIntOverflowAcrossChunks pins the overflow interplay: a
// partial int sum that overflows only when merged must fall back to the
// float64 sum exactly like the serial fold at the same prefix.
func TestMergeStateIntOverflowAcrossChunks(t *testing.T) {
	spec := analyze.AggSpec{Func: sqlparser.AggSum, Arg: nil}
	a := &aggState{intOnly: true}
	b := &aggState{intOnly: true}
	big := int64(1) << 62
	if err := a.fold(value.NewInt(big), 1, spec); err != nil {
		t.Fatal(err)
	}
	if err := b.fold(value.NewInt(big), 1, spec); err != nil {
		t.Fatal(err)
	}
	if !a.intOnly || !b.intOnly {
		t.Fatal("each partial 2^62 fits int64; partials must still be intOnly")
	}
	if err := mergeState(a, b, spec); err != nil {
		t.Fatal(err)
	}
	if a.intOnly {
		t.Fatal("merged sum 2^63 overflows int64; state must fall back to float")
	}
	got := finalize(a, spec)
	if got.K != value.Float || got.F != 2*float64(big) {
		t.Fatalf("merged overflowed SUM = %v (%v), want FLOAT %g", got, got.K, 2*float64(big))
	}
}
