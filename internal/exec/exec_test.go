package exec

import (
	"testing"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// fixture builds a one-atom query over relation t(g STRING, v INT,
// f FLOAT) and the corresponding layout + rows.
func fixture(t *testing.T, sql string) (*analyze.Query, *analyze.Layout, []value.Row) {
	t.Helper()
	db, err := schema.NewDatabase(schema.MustRelation("t",
		schema.Attribute{Name: "g", Kind: value.String},
		schema.Attribute{Name: "v", Kind: value.Int},
		schema.Attribute{Name: "f", Kind: value.Float},
	))
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.Analyze(stmt.Select, db)
	if err != nil {
		t.Fatal(err)
	}
	layout := analyze.NewLayout()
	for attr := 0; attr < 3; attr++ {
		layout.Add(analyze.ColID{Atom: 0, Attr: attr})
	}
	rows := []value.Row{
		{value.NewString("a"), value.NewInt(1), value.NewFloat(1.5)},
		{value.NewString("a"), value.NewInt(2), value.NewFloat(2.5)},
		{value.NewString("b"), value.NewInt(3), value.NewFloat(0.5)},
		{value.NewString("b"), value.NewInt(3), value.NewFloat(4.5)},
		{value.NewString("c"), value.NewNull(), value.NewFloat(9)},
	}
	return q, layout, rows
}

func run(t *testing.T, sql string) []value.Row {
	t.Helper()
	q, layout, rows := fixture(t, sql)
	out, err := Finish(q, rows, layout)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestProjection(t *testing.T) {
	out := run(t, "SELECT v, f FROM t")
	if len(out) != 5 || out[0][0].I != 1 || out[0][1].F != 1.5 {
		t.Errorf("out = %v", out)
	}
}

func TestProjectionExpression(t *testing.T) {
	out := run(t, "SELECT v * 10 + 1 FROM t WHERE v = 2")
	// Finish does not evaluate WHERE (that's the executor's job), so all
	// rows flow through; check the expression only.
	if out[1][0].I != 21 {
		t.Errorf("expression output = %v", out[1][0])
	}
}

func TestDistinct(t *testing.T) {
	out := run(t, "SELECT DISTINCT g FROM t")
	if len(out) != 3 {
		t.Errorf("distinct g = %v", out)
	}
}

func TestGroupByCountSum(t *testing.T) {
	out := run(t, "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY g ORDER BY g")
	if len(out) != 3 {
		t.Fatalf("groups = %v", out)
	}
	// a: n=2 s=3; b: n=2 s=6; c: n=1 s=NULL (all v NULL).
	if out[0][1].I != 2 || out[0][2].I != 3 {
		t.Errorf("group a = %v", out[0])
	}
	if out[1][1].I != 2 || out[1][2].I != 6 {
		t.Errorf("group b = %v", out[1])
	}
	if out[2][1].I != 1 || !out[2][2].IsNull() {
		t.Errorf("group c = %v (SUM of NULLs must be NULL)", out[2])
	}
}

// sumFixture runs SUM(v) over custom int rows and returns the single
// aggregate value.
func sumFixture(t *testing.T, vals []int64, weights []int64) value.Value {
	t.Helper()
	q, layout, _ := fixture(t, "SELECT SUM(v) FROM t")
	rows := make([]value.Row, len(vals))
	for i, v := range vals {
		rows[i] = value.Row{value.NewString("g"), value.NewInt(v), value.NewFloat(0)}
	}
	out, err := FinishWeighted(q, rows, weights, layout)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0]) != 1 {
		t.Fatalf("out = %v", out)
	}
	return out[0][0]
}

func TestSumIntOverflowPromotes(t *testing.T) {
	const big = int64(1) << 62
	// Within range: stays exact INT.
	if got := sumFixture(t, []int64{big, 1}, nil); got.K != value.Int || got.I != big+1 {
		t.Errorf("in-range SUM = %v (%v), want INT %d", got, got.K, big+1)
	}
	// 3 * 2^62 wraps int64; the sum must promote to float64, not go
	// negative.
	got := sumFixture(t, []int64{big, big, big}, nil)
	if got.K != value.Float {
		t.Fatalf("overflowing SUM = %v (%v), want FLOAT", got, got.K)
	}
	if want := 3 * float64(big); got.F != want {
		t.Errorf("overflowing SUM = %g, want %g", got.F, want)
	}
	// Negative direction too.
	got = sumFixture(t, []int64{-big, -big, -big}, nil)
	if got.K != value.Float || got.F != -3*float64(big) {
		t.Errorf("negative overflow SUM = %v (%v), want FLOAT %g", got, got.K, -3*float64(big))
	}
	// Overflow via bag weights: one row standing for many duplicates.
	got = sumFixture(t, []int64{big}, []int64{4})
	if got.K != value.Float || got.F != 4*float64(big) {
		t.Errorf("weighted overflow SUM = %v (%v), want FLOAT %g", got, got.K, 4*float64(big))
	}
	// Once promoted, later small values keep the float path.
	got = sumFixture(t, []int64{big, big, big, -big, -big, -big}, nil)
	if got.K != value.Float || got.F != 0 {
		t.Errorf("promote-then-cancel SUM = %v (%v), want FLOAT 0", got, got.K)
	}
}

func TestOverflowHelpers(t *testing.T) {
	const max, min = int64(1<<63 - 1), int64(-1 << 63)
	for _, c := range []struct {
		a, b int64
		ok   bool
	}{
		{1, 2, true}, {max, 0, true}, {max, 1, false}, {min, -1, false},
		{min, 1, true}, {max / 2, max / 2, true}, {min, min, false},
	} {
		if _, ok := value.AddInt64(c.a, c.b); ok != c.ok {
			t.Errorf("AddInt64(%d, %d) ok = %v, want %v", c.a, c.b, ok, c.ok)
		}
	}
	for _, c := range []struct {
		a, b int64
		ok   bool
	}{
		{0, max, true}, {1, max, true}, {2, max, false}, {min, -1, false},
		{-1, min, false}, {min, 1, true}, {1 << 32, 1 << 32, false}, {-(1 << 31), 1 << 31, true},
	} {
		if _, ok := value.MulInt64(c.a, c.b); ok != c.ok {
			t.Errorf("MulInt64(%d, %d) ok = %v, want %v", c.a, c.b, ok, c.ok)
		}
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	out := run(t, "SELECT COUNT(v), COUNT(*) FROM t")
	if out[0][0].I != 4 || out[0][1].I != 5 {
		t.Errorf("COUNT(v), COUNT(*) = %v", out[0])
	}
}

func TestCountDistinct(t *testing.T) {
	out := run(t, "SELECT COUNT(DISTINCT v) FROM t")
	if out[0][0].I != 3 {
		t.Errorf("COUNT(DISTINCT v) = %v", out[0][0])
	}
}

func TestAvgMinMax(t *testing.T) {
	out := run(t, "SELECT AVG(v), MIN(f), MAX(f) FROM t")
	if out[0][0].F != 9.0/4 {
		t.Errorf("AVG = %v", out[0][0])
	}
	if out[0][1].F != 0.5 || out[0][2].F != 9.0 {
		t.Errorf("MIN/MAX = %v / %v", out[0][1], out[0][2])
	}
}

func TestEmptyInputAggregate(t *testing.T) {
	q, layout, _ := fixture(t, "SELECT COUNT(*), SUM(v), MIN(v) FROM t")
	out, err := Finish(q, nil, layout)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("empty aggregate must produce one row, got %d", len(out))
	}
	if out[0][0].I != 0 || !out[0][1].IsNull() || !out[0][2].IsNull() {
		t.Errorf("empty aggregates = %v", out[0])
	}
}

func TestEmptyInputGroupedAggregate(t *testing.T) {
	q, layout, _ := fixture(t, "SELECT g, COUNT(*) FROM t GROUP BY g")
	out, err := Finish(q, nil, layout)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("grouped aggregate over empty input must be empty, got %v", out)
	}
}

func TestHaving(t *testing.T) {
	out := run(t, "SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING COUNT(*) > 1 ORDER BY g")
	if len(out) != 2 || out[0][0].S != "a" || out[1][0].S != "b" {
		t.Errorf("having = %v", out)
	}
}

func TestOrderByDescAndLimitOffset(t *testing.T) {
	out := run(t, "SELECT v FROM t ORDER BY v DESC LIMIT 2 OFFSET 1")
	// v sorted desc: 3, 3, 2, 1, NULL -> offset 1, limit 2 -> 3, 2.
	if len(out) != 2 || out[0][0].I != 3 || out[1][0].I != 2 {
		t.Errorf("out = %v", out)
	}
}

func TestOrderByNullsFirstAsc(t *testing.T) {
	out := run(t, "SELECT v FROM t ORDER BY v")
	if !out[0][0].IsNull() {
		t.Errorf("NULL should sort first ascending: %v", out)
	}
}

func TestClip(t *testing.T) {
	rows := []value.Row{{value.NewInt(1)}, {value.NewInt(2)}, {value.NewInt(3)}}
	lim, off := 2, 1
	if got := Clip(rows, &lim, &off); len(got) != 2 || got[0][0].I != 2 {
		t.Errorf("Clip = %v", got)
	}
	bigOff := 99
	if got := Clip(rows, nil, &bigOff); got != nil {
		t.Errorf("Clip past end = %v", got)
	}
	if got := Clip(rows, nil, nil); len(got) != 3 {
		t.Errorf("Clip nil/nil = %v", got)
	}
}

func TestDedup(t *testing.T) {
	rows := []value.Row{
		{value.NewInt(1), value.NewString("x")},
		{value.NewInt(1), value.NewString("x")},
		{value.NewFloat(1), value.NewString("x")}, // equal under coercion
		{value.NewInt(2), value.NewString("x")},
	}
	out := Dedup(rows)
	if len(out) != 2 {
		t.Errorf("Dedup = %v", out)
	}
}
