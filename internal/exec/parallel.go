// Parallel relational tail: the materialising counterpart of Stream for
// the parallel bounded executor. The joined intermediate relation is
// already in memory (its size is bounded by the deduced bound M), so the
// tail splits it into ordered chunks, projects or aggregates the chunks
// on a worker pool, and merges deterministically:
//
//   - projection concatenates the per-chunk outputs in chunk order, which
//     is exactly the sequential left-to-right order;
//   - aggregation gives every worker its own group table (per-worker
//     partial aggStates) and merges the partials in chunk order before
//     finalize, preserving the sequential first-appearance group order.
//
// Integer aggregates (COUNT, integer SUM with its exact int64 running
// sum, MIN/MAX) merge exactly; float SUM/AVG records its terms in input
// order and replays them after the merge, reproducing the serial
// accumulation sequence — float addition is not associative, so merging
// partial sums would drift in the last ulp. Results are therefore
// bit-identical to the serial tail for every aggregate.
package exec

import (
	"context"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// FinishWeightedParallel is FinishWeighted across par workers. The
// DISTINCT / ORDER BY / LIMIT stages after projection or aggregation
// operate on the merged result and stay sequential (they are ordering-
// sensitive and cheap relative to the fan-out stages).
func FinishWeightedParallel(ctx context.Context, q *analyze.Query, rows []value.Row, weights []int64, layout *analyze.Layout, par int) ([]value.Row, error) {
	if par <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return FinishWeighted(q, rows, weights, layout)
	}
	var out []value.Row
	var err error
	if q.IsAgg {
		out, err = parallelAggregate(ctx, q, rows, weights, layout, par)
	} else {
		out, err = parallelProject(ctx, q, rows, weights, layout, par)
	}
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		out = Dedup(out)
	}
	if len(q.OrderBy) > 0 {
		if err := SortRows(out, q.OrderBy); err != nil {
			return nil, err
		}
	}
	return Clip(out, q.Limit, q.Offset), nil
}

// parallelProject evaluates the output expressions chunk-parallel,
// replicating each projected row by its bag weight exactly like
// projectIter, and concatenates the chunks in order.
func parallelProject(ctx context.Context, q *analyze.Query, rows []value.Row, weights []int64, layout *analyze.Layout, par int) ([]value.Row, error) {
	chunks := iter.Chunks(len(rows), par)
	outs := make([][]value.Row, len(chunks))
	err := iter.ParallelChunks(ctx, chunks, par, func(ci, lo, hi int) error {
		var part []value.Row
		for i := lo; i < hi; i++ {
			res := make(value.Row, len(q.Outputs))
			for oi, o := range q.Outputs {
				v, err := analyze.Eval(o.Expr, rows[i], layout)
				if err != nil {
					return err
				}
				res[oi] = v
			}
			w := int64(1)
			if weights != nil {
				w = weights[i]
			}
			if q.Distinct {
				w = 1 // duplicates collapse downstream
			}
			for ; w > 0; w-- {
				part = append(part, res)
			}
		}
		outs[ci] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range outs {
		total += len(p)
	}
	out := make([]value.Row, 0, total)
	for _, p := range outs {
		out = append(out, p...)
	}
	return out, nil
}

// parallelAggregate folds ordered row chunks into per-worker aggregators
// and merges them in chunk order: group order and every aggregate match
// the sequential fold bit for bit — counts, MIN/MAX and the exact int64
// running sum merge exactly, and float SUM/AVG replays its recorded
// terms in the serial fold order (see aggState.trackTerms).
func parallelAggregate(ctx context.Context, q *analyze.Query, rows []value.Row, weights []int64, layout *analyze.Layout, par int) ([]value.Row, error) {
	chunks := iter.Chunks(len(rows), par)
	parts := make([]*aggregator, len(chunks))
	err := iter.ParallelChunks(ctx, chunks, par, func(ci, lo, hi int) error {
		acc := newAggregator(q, layout)
		acc.trackTerms = true
		for i := lo; i < hi; i++ {
			w := int64(1)
			if weights != nil {
				w = weights[i]
			}
			if err := acc.add(rows[i], w); err != nil {
				return err
			}
		}
		parts[ci] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := newAggregator(q, layout)
	merged.trackTerms = true
	if len(parts) > 0 {
		merged = parts[0]
		for _, p := range parts[1:] {
			if err := merged.merge(p); err != nil {
				return nil, err
			}
		}
	}
	// Replay float sums in serial term order before finalising.
	for _, k := range merged.order {
		g := merged.groups[k]
		for i, spec := range merged.q.Aggs {
			if spec.Func == sqlparser.AggSum || spec.Func == sqlparser.AggAvg {
				g.aggs[i].replaySum()
			}
		}
	}
	return merged.result()
}

// replaySum recomputes the float sum by folding the recorded terms left
// to right — exactly the serial accumulation sequence, whatever chunk
// boundaries the terms crossed.
func (st *aggState) replaySum() {
	if !st.trackTerms {
		return
	}
	s := 0.0
	for _, t := range st.terms {
		s += t
	}
	st.sum = s
}

// merge folds another aggregator's groups into a, preserving a's group
// order and appending b's new groups in their order — together the
// first-appearance order of the concatenated input.
func (a *aggregator) merge(b *aggregator) error {
	for _, k := range b.order {
		src := b.groups[k]
		dst, ok := a.groups[k]
		if !ok {
			a.groups[k] = src
			a.order = append(a.order, k)
			continue
		}
		for i, spec := range a.q.Aggs {
			if err := mergeState(dst.aggs[i], src.aggs[i], spec); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeState combines two partial aggregate states over the same group.
// Counts and the exact int64 running sum merge exactly (falling back to
// the float64 sum only when the merged sum would overflow, mirroring the
// sequential overflow promotion); DISTINCT sets replay the source's
// values in first-appearance order; MIN/MAX merge under value.Compare's
// total order.
func mergeState(dst, src *aggState, spec analyze.AggSpec) error {
	if spec.Star {
		dst.count += src.count
		dst.nonEmpty = dst.nonEmpty || src.nonEmpty
		return nil
	}
	if spec.Distinct {
		for _, v := range src.distinctVals {
			k := value.Key([]value.Value{v})
			if _, dup := dst.distinct[k]; dup {
				continue
			}
			dst.distinct[k] = struct{}{}
			dst.distinctVals = append(dst.distinctVals, v)
			if err := dst.fold(v, 1, spec); err != nil {
				return err
			}
		}
		return nil
	}
	dst.count += src.count
	if !src.nonEmpty {
		return nil
	}
	dst.sum += src.sum
	dst.terms = append(dst.terms, src.terms...)
	if dst.intOnly && src.intOnly {
		// The serial fold continues src's sequence from dst's running sum,
		// falling back to float64 the moment any prefix overflows — even
		// one a later term cancels. Re-base src's prefix extremes on
		// dst.sumInt: if both fit, every intermediate sum fits (the total
		// lies between them); otherwise some serial prefix overflowed.
		hi, okHi := value.AddInt64(dst.sumInt, src.intPrefixMax)
		lo, okLo := value.AddInt64(dst.sumInt, src.intPrefixMin)
		if okHi && okLo {
			dst.sumInt += src.sumInt
			if hi > dst.intPrefixMax {
				dst.intPrefixMax = hi
			}
			if lo < dst.intPrefixMin {
				dst.intPrefixMin = lo
			}
		} else {
			dst.intOnly = false
		}
	} else {
		dst.intOnly = false
	}
	if !dst.nonEmpty {
		dst.min, dst.max = src.min, src.max
	} else {
		if c, err := value.Compare(src.min, dst.min); err == nil && c < 0 {
			dst.min = src.min
		}
		if c, err := value.Compare(src.max, dst.max); err == nil && c > 0 {
			dst.max = src.max
		}
	}
	dst.nonEmpty = true
	return nil
}
