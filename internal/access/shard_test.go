package access

// Tests of the partitioned bucket table: the shard-parallel build must
// produce byte-for-byte the same fetch results as a sequential fold, and
// concurrent probes/maintenance across shards must be race-free (run
// under -race in CI).

import (
	"fmt"
	"sync"
	"testing"

	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// buildSequential is the reference fold: one row at a time, no shards
// involved beyond routing.
func buildSequential(t *testing.T, c *Constraint, tab *storage.Table) *Index {
	t.Helper()
	ix, err := newIndex(c, tab, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows() {
		var kb [48]byte
		xk := value.AppendRowKey(kb[:0], row, ix.xPos)
		ix.shards[shardOf(string(xk))].insert(xk, row, ix.yPos)
	}
	if m := ix.MaxBucket(); m > ix.C.N {
		ix.C.N = m
	}
	return ix
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	db, store := testDB(t)
	tab, ok := store.Table("call")
	if !ok {
		t.Fatal("no call table")
	}
	// Enough rows to cross parallelBuildThreshold, with heavy key reuse so
	// buckets have several Y-values and witness counts > 1.
	const n = parallelBuildThreshold + 5000
	for i := 0; i < n; i++ {
		if err := tab.Insert(callRow(int64(i%701), int64(i%13), int64(i%29), fmt.Sprintf("r%d", i%7))); err != nil {
			t.Fatal(err)
		}
	}
	c1, err := NewConstraint(db, "call", []string{"pnum", "date"}, []string{"recnum", "region"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2 := *c1
	par, err := BuildIndex(c1, tab, true) // picks the parallel build on multicore
	if err != nil {
		t.Fatal(err)
	}
	seq := buildSequential(t, &c2, tab)

	if par.Tuples() != seq.Tuples() || par.Buckets() != seq.Buckets() || par.MaxBucket() != seq.MaxBucket() {
		t.Fatalf("parallel build diverged: tuples %d vs %d, buckets %d vs %d, maxN %d vs %d",
			par.Tuples(), seq.Tuples(), par.Buckets(), seq.Buckets(), par.MaxBucket(), seq.MaxBucket())
	}
	// Every bucket must match in content, order and witness counts: the
	// fetch results are part of the executor's determinism contract.
	for i := 0; i < 701; i++ {
		for d := 0; d < 13; d++ {
			key := value.Key([]value.Value{value.NewInt(int64(i)), value.NewInt(int64(d))})
			pr, pc, pn := par.FetchWeightedEncoded(key)
			sr, sc, sn := seq.FetchWeightedEncoded(key)
			if pn != sn || len(pr) != len(sr) {
				t.Fatalf("key (%d,%d): fetched %d vs %d", i, d, pn, sn)
			}
			for j := range pr {
				if value.Key(pr[j]) != value.Key(sr[j]) || pc[j] != sc[j] {
					t.Fatalf("key (%d,%d) position %d: %v×%d vs %v×%d", i, d, j, pr[j], pc[j], sr[j], sc[j])
				}
			}
		}
	}
}

func TestShardedConcurrentFetchAndMaintain(t *testing.T) {
	db, store := testDB(t)
	tab, ok := store.Table("call")
	if !ok {
		t.Fatal("no call table")
	}
	for i := 0; i < 1000; i++ {
		if err := tab.Insert(callRow(int64(i%100), int64(i%5), int64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewConstraint(db, "call", []string{"pnum"}, []string{"recnum"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(c, tab, true)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := value.Key([]value.Value{value.NewInt(int64(i % 100))})
				if rows, _, n := ix.FetchWeightedEncoded(key); n == 0 || len(rows) == 0 {
					t.Errorf("worker %d: key %d fetched nothing", w, i%100)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			ix.OnInsert(callRow(int64(i%100), 9, int64(10_000+i), "y"))
		}
	}()
	wg.Wait()
	if ok, viols := ix.Conforms(); !ok {
		t.Fatalf("index does not conform after widening maintenance: %v", viols)
	}
}
