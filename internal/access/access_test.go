package access

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

func testDB(t *testing.T) (*schema.Database, *storage.Store) {
	t.Helper()
	db, err := schema.NewDatabase(
		schema.MustRelation("call",
			schema.Attribute{Name: "pnum", Kind: value.Int},
			schema.Attribute{Name: "date", Kind: value.Int},
			schema.Attribute{Name: "recnum", Kind: value.Int},
			schema.Attribute{Name: "region", Kind: value.String},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	return db, storage.NewStore(db)
}

func callRow(p, d, r int64, reg string) value.Row {
	return value.Row{value.NewInt(p), value.NewInt(d), value.NewInt(r), value.NewString(reg)}
}

func TestNewConstraintValidation(t *testing.T) {
	db, _ := testDB(t)
	if _, err := NewConstraint(db, "nosuch", []string{"a"}, []string{"b"}, 1); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := NewConstraint(db, "call", []string{"ghost"}, []string{"recnum"}, 1); err == nil {
		t.Error("unknown X attribute should fail")
	}
	if _, err := NewConstraint(db, "call", []string{"pnum"}, []string{"ghost"}, 1); err == nil {
		t.Error("unknown Y attribute should fail")
	}
	if _, err := NewConstraint(db, "call", []string{"pnum", "PNUM"}, []string{"recnum"}, 1); err == nil {
		t.Error("duplicate X attribute should fail")
	}
	if _, err := NewConstraint(db, "call", []string{"pnum"}, nil, 1); err == nil {
		t.Error("empty Y should fail")
	}
	if _, err := NewConstraint(db, "call", []string{"pnum"}, []string{"recnum"}, 0); err == nil {
		t.Error("non-positive N should fail")
	}
	// Names are canonicalised to schema case.
	c, err := NewConstraint(db, "CALL", []string{"PNUM"}, []string{"RECNUM"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rel != "call" || c.X[0] != "pnum" || c.Y[0] != "recnum" {
		t.Errorf("canonicalisation failed: %+v", c)
	}
	// Empty X is allowed: a whole-relation cardinality constraint.
	if _, err := NewConstraint(db, "call", nil, []string{"region"}, 10); err != nil {
		t.Errorf("empty X should be allowed: %v", err)
	}
}

func TestParseConstraint(t *testing.T) {
	db, _ := testDB(t)
	c, err := ParseConstraint(db, "call({pnum, date} -> {recnum, region}, 500)")
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 500 || len(c.X) != 2 || len(c.Y) != 2 {
		t.Errorf("parsed = %+v", c)
	}
	// Singleton sets without braces.
	c2, err := ParseConstraint(db, "call(pnum -> recnum, 7)")
	if err != nil {
		t.Fatal(err)
	}
	if c2.X[0] != "pnum" || c2.Y[0] != "recnum" || c2.N != 7 {
		t.Errorf("parsed = %+v", c2)
	}
	// Round trip through String.
	c3, err := ParseConstraint(db, c.String())
	if err != nil {
		t.Fatal(err)
	}
	if c3.ID() != c.ID() {
		t.Errorf("String/Parse round trip changed identity: %v vs %v", c, c3)
	}
	for _, bad := range []string{
		"call",
		"call()",
		"call(pnum, 5)",
		"call(pnum -> recnum)",
		"call(pnum -> recnum, x)",
	} {
		if _, err := ParseConstraint(db, bad); err == nil {
			t.Errorf("ParseConstraint(%q) should fail", bad)
		}
	}
}

func TestConstraintPredicates(t *testing.T) {
	db, _ := testDB(t)
	c, _ := NewConstraint(db, "call", []string{"pnum", "date"}, []string{"recnum"}, 5)
	if !c.HasX("PNUM") || c.HasX("recnum") || !c.HasY("recnum") {
		t.Error("HasX/HasY broken")
	}
	if !c.Covers([]string{"pnum", "recnum"}) || c.Covers([]string{"region"}) {
		t.Error("Covers broken")
	}
}

func TestBuildIndexAndFetch(t *testing.T) {
	db, store := testDB(t)
	tab := store.MustTable("call")
	// pnum 1 on date 10 called 2 distinct (recnum, region) pairs; one is
	// duplicated and must be deduplicated by the index.
	rows := []value.Row{
		callRow(1, 10, 100, "east"),
		callRow(1, 10, 100, "east"),
		callRow(1, 10, 101, "west"),
		callRow(1, 11, 102, "east"),
		callRow(2, 10, 100, "east"),
	}
	for _, r := range rows {
		if err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := NewConstraint(db, "call", []string{"pnum", "date"}, []string{"recnum", "region"}, 2)
	idx, err := BuildIndex(c, tab, false)
	if err != nil {
		t.Fatal(err)
	}
	got, n := idx.Fetch([]value.Value{value.NewInt(1), value.NewInt(10)})
	if n != 2 || len(got) != 2 {
		t.Fatalf("Fetch = %d tuples (%v)", n, got)
	}
	if idx.Buckets() != 3 || idx.Tuples() != 4 {
		t.Errorf("Buckets=%d Tuples=%d", idx.Buckets(), idx.Tuples())
	}
	if _, n := idx.Fetch([]value.Value{value.NewInt(9), value.NewInt(9)}); n != 0 {
		t.Error("missing key should fetch nothing")
	}
	if !idx.Contains([]value.Value{value.NewInt(2), value.NewInt(10)}) {
		t.Error("Contains failed")
	}
}

func TestBuildIndexRejectsViolation(t *testing.T) {
	db, store := testDB(t)
	tab := store.MustTable("call")
	for i := 0; i < 5; i++ {
		_ = tab.Insert(callRow(1, 10, int64(100+i), "east"))
	}
	c, _ := NewConstraint(db, "call", []string{"pnum"}, []string{"recnum"}, 3)
	if _, err := BuildIndex(c, tab, false); err == nil {
		t.Error("non-conforming instance must be rejected without autoWiden")
	}
	c2, _ := NewConstraint(db, "call", []string{"pnum"}, []string{"recnum"}, 3)
	idx, err := BuildIndex(c2, tab, true)
	if err != nil {
		t.Fatal(err)
	}
	if c2.N != 5 {
		t.Errorf("autoWiden should set N to 5, got %d", c2.N)
	}
	if idx.MaxBucket() != 5 {
		t.Errorf("MaxBucket = %d", idx.MaxBucket())
	}
}

func TestIncrementalMaintenance(t *testing.T) {
	db, store := testDB(t)
	tab := store.MustTable("call")
	c, _ := NewConstraint(db, "call", []string{"pnum"}, []string{"recnum"}, 100)
	idx, err := BuildIndex(c, tab, false)
	if err != nil {
		t.Fatal(err)
	}
	tab.Observe(idx)

	_ = tab.Insert(callRow(1, 10, 100, "east"))
	_ = tab.Insert(callRow(1, 11, 100, "west")) // same (pnum, recnum): refcounted
	_ = tab.Insert(callRow(1, 12, 101, "east"))
	if got, _ := idx.Fetch([]value.Value{value.NewInt(1)}); len(got) != 2 {
		t.Fatalf("bucket = %v", got)
	}
	// Deleting one witness of recnum 100 keeps it (another row remains).
	tab.Delete(func(r value.Row) bool { return r[1].I == 10 })
	if got, _ := idx.Fetch([]value.Value{value.NewInt(1)}); len(got) != 2 {
		t.Errorf("refcounted Y-value dropped too early: %v", got)
	}
	// Deleting the second witness removes it.
	tab.Delete(func(r value.Row) bool { return r[1].I == 11 })
	got, _ := idx.Fetch([]value.Value{value.NewInt(1)})
	if len(got) != 1 || got[0][0].I != 101 {
		t.Errorf("bucket after full delete = %v", got)
	}
	// Deleting everything removes the bucket.
	tab.Delete(func(value.Row) bool { return true })
	if idx.Buckets() != 0 || idx.Tuples() != 0 {
		t.Errorf("index not empty: buckets=%d tuples=%d", idx.Buckets(), idx.Tuples())
	}
}

func TestMaintenanceViolationPolicies(t *testing.T) {
	db, store := testDB(t)
	tab := store.MustTable("call")
	// Strict policy: exceeding N invalidates the index.
	c, _ := NewConstraint(db, "call", []string{"pnum"}, []string{"recnum"}, 2)
	idx, err := BuildIndex(c, tab, false)
	if err != nil {
		t.Fatal(err)
	}
	tab.Observe(idx)
	_ = tab.Insert(callRow(1, 10, 100, "east"))
	_ = tab.Insert(callRow(1, 10, 101, "east"))
	if idx.Invalid() {
		t.Fatal("index invalid too early")
	}
	_ = tab.Insert(callRow(1, 10, 102, "east"))
	if !idx.Invalid() {
		t.Fatal("strict index must invalidate when a bucket exceeds N")
	}
	if len(idx.Violations()) == 0 {
		t.Error("violations should be recorded")
	}
	tab.Unobserve(idx)

	// Widening policy: N grows instead.
	db2, store2 := testDB(t)
	tab2 := store2.MustTable("call")
	c2, _ := NewConstraint(db2, "call", []string{"pnum"}, []string{"recnum"}, 2)
	idx2, err := BuildIndex(c2, tab2, true)
	if err != nil {
		t.Fatal(err)
	}
	tab2.Observe(idx2)
	for i := 0; i < 5; i++ {
		_ = tab2.Insert(callRow(1, 10, int64(100+i), "east"))
	}
	if idx2.Invalid() {
		t.Error("widening index must stay valid")
	}
	if c2.N != 5 {
		t.Errorf("N should have widened to 5, got %d", c2.N)
	}
}

// TestMaintenanceEquivalentToRebuild is the maintenance correctness
// property: after a random insert/delete stream, the incrementally
// maintained index equals one rebuilt from scratch.
func TestMaintenanceEquivalentToRebuild(t *testing.T) {
	db, store := testDB(t)
	tab := store.MustTable("call")
	c, _ := NewConstraint(db, "call", []string{"pnum", "date"}, []string{"recnum"}, 1000)
	idx, err := BuildIndex(c, tab, false)
	if err != nil {
		t.Fatal(err)
	}
	tab.Observe(idx)

	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 3000; step++ {
		if rng.Intn(3) > 0 || tab.Len() == 0 {
			_ = tab.Insert(callRow(int64(rng.Intn(5)), int64(rng.Intn(4)), int64(rng.Intn(6)), "r"))
		} else {
			victim := int64(rng.Intn(6))
			deleted := false
			tab.Delete(func(r value.Row) bool {
				if !deleted && r[2].I == victim {
					deleted = true
					return true
				}
				return false
			})
		}
	}
	fresh, err := BuildIndex(c, tab, true)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tuples() != fresh.Tuples() || idx.Buckets() != fresh.Buckets() {
		t.Fatalf("maintained index diverged: tuples %d vs %d, buckets %d vs %d",
			idx.Tuples(), fresh.Tuples(), idx.Buckets(), fresh.Buckets())
	}
	// Compare a sample of buckets content-wise (order-insensitive).
	for p := int64(0); p < 5; p++ {
		for d := int64(0); d < 4; d++ {
			key := []value.Value{value.NewInt(p), value.NewInt(d)}
			a, _ := idx.Fetch(key)
			b, _ := fresh.Fetch(key)
			if !sameRows(a, b) {
				t.Fatalf("bucket (%d,%d) differs: %v vs %v", p, d, a, b)
			}
		}
	}
}

func sameRows(a, b []value.Row) bool {
	if len(a) != len(b) {
		return false
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = value.Key(a[i])
		kb[i] = value.Key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	return reflect.DeepEqual(ka, kb)
}

func TestSchemaRegistry(t *testing.T) {
	db, store := testDB(t)
	tab := store.MustTable("call")
	_ = tab.Insert(callRow(1, 10, 100, "east"))
	as := NewSchema(store)
	c, _ := NewConstraint(db, "call", []string{"pnum"}, []string{"recnum"}, 5)
	if _, err := as.Register(c, false); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Register(c, false); err == nil {
		t.Error("duplicate registration should fail")
	}
	if got := as.ForRelation("CALL"); len(got) != 1 {
		t.Errorf("ForRelation = %v", got)
	}
	if as.Len() != 1 || as.Footprint() != 1 {
		t.Errorf("Len=%d Footprint=%d", as.Len(), as.Footprint())
	}
	// The index is maintained through the schema's observer registration.
	_ = tab.Insert(callRow(1, 11, 101, "west"))
	idx, ok := as.Index(c)
	if !ok {
		t.Fatal("index missing")
	}
	if got, _ := idx.Fetch([]value.Value{value.NewInt(1)}); len(got) != 2 {
		t.Errorf("index not maintained after Register: %v", got)
	}
	if ok, _ := as.Conforms(); !ok {
		t.Error("schema should conform")
	}
	if !as.Unregister(c) {
		t.Error("Unregister failed")
	}
	if as.Unregister(c) {
		t.Error("double Unregister should report false")
	}
	// After unregistering, the index no longer observes.
	_ = tab.Insert(callRow(1, 12, 102, "west"))
	if got, _ := idx.Fetch([]value.Value{value.NewInt(1)}); len(got) != 2 {
		t.Errorf("unregistered index still maintained: %v", got)
	}
}

func TestSchemaSerialisation(t *testing.T) {
	db, store := testDB(t)
	as := NewSchema(store)
	c, _ := NewConstraint(db, "call", []string{"pnum", "date"}, []string{"recnum", "region"}, 500)
	if _, err := as.Register(c, false); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := as.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConstraints(db, strings.NewReader("# comment\n\n"+sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID() != c.ID() {
		t.Errorf("round trip = %v", got)
	}
	if _, err := ReadConstraints(db, strings.NewReader("garbage(")); err == nil {
		t.Error("malformed constraint file should fail")
	}
}

func TestViolationString(t *testing.T) {
	db, _ := testDB(t)
	c, _ := NewConstraint(db, "call", []string{"pnum"}, []string{"recnum"}, 2)
	v := Violation{Constraint: c, XKey: []value.Value{value.NewInt(7)}, Count: 9}
	s := v.String()
	if !strings.Contains(s, "7") || !strings.Contains(s, "9") || !strings.Contains(s, "2") {
		t.Errorf("Violation.String() = %q", s)
	}
}
