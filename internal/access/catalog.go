package access

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"

	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/storage"
)

// Schema is an access schema A: a set of access constraints with their
// indices, plus the statistics the BE Query Planner consumes. It is the
// Metadata module of the paper's AS Catalog.
type Schema struct {
	db    *schema.Database
	store *storage.Store

	mu          sync.RWMutex
	constraints []*Constraint
	indexes     map[string]*Index // by Constraint.ID()
	byRel       map[string][]*Constraint
}

// NewSchema creates an empty access schema over the given store.
func NewSchema(store *storage.Store) *Schema {
	return &Schema{
		db:      store.DB,
		store:   store,
		indexes: make(map[string]*Index),
		byRel:   make(map[string][]*Constraint),
	}
}

// Register validates c against the data, builds its index and adds it to
// the schema. With autoWiden the bound N is widened to the observed
// maximum instead of failing; this mirrors discovery, where N is
// "aggregated from historical datasets" (paper Example 1).
func (s *Schema) Register(c *Constraint, autoWiden bool) (*Index, error) {
	t, ok := s.store.Table(c.Rel)
	if !ok {
		return nil, fmt.Errorf("access: no table for relation %q", c.Rel)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.indexes[c.ID()]; dup {
		return nil, fmt.Errorf("access: constraint %v already registered", c)
	}
	// Build the index and attach it as a mutation observer atomically:
	// ObserveBuild holds the table lock across both, so a concurrent
	// insert lands either in the scanned snapshot or in a subsequent
	// OnInsert notification — never in both, never in neither.
	idx, err := newIndex(c, t, autoWiden)
	if err != nil {
		return nil, err
	}
	if err := t.ObserveBuild(idx, idx.buildFrom); err != nil {
		return nil, err
	}
	s.constraints = append(s.constraints, c)
	s.indexes[c.ID()] = idx
	rel := strings.ToLower(c.Rel)
	s.byRel[rel] = append(s.byRel[rel], c)
	return idx, nil
}

// Unregister removes a constraint and detaches its index.
func (s *Schema) Unregister(c *Constraint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, ok := s.indexes[c.ID()]
	if !ok {
		return false
	}
	if t, ok := s.store.Table(c.Rel); ok {
		t.Unobserve(idx)
	}
	delete(s.indexes, c.ID())
	rel := strings.ToLower(c.Rel)
	rm := func(list []*Constraint) []*Constraint {
		for i, x := range list {
			if x.ID() == c.ID() {
				return append(list[:i], list[i+1:]...)
			}
		}
		return list
	}
	s.byRel[rel] = rm(s.byRel[rel])
	s.constraints = rm(s.constraints)
	return true
}

// Constraints returns all registered constraints.
func (s *Schema) Constraints() []*Constraint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Constraint(nil), s.constraints...)
}

// ForRelation returns the constraints on a relation (case-insensitive).
func (s *Schema) ForRelation(rel string) []*Constraint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Constraint(nil), s.byRel[strings.ToLower(rel)]...)
}

// Index returns the index for a registered constraint.
func (s *Schema) Index(c *Constraint) (*Index, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.indexes[c.ID()]
	return idx, ok
}

// Len returns the number of registered constraints.
func (s *Schema) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.constraints)
}

// Footprint returns the total number of distinct (X, Y) pairs stored
// across all indices — the storage cost tracked by the discovery module.
func (s *Schema) Footprint() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, ix := range s.indexes {
		total += ix.Tuples()
	}
	return total
}

// Retighten adjusts every constraint's bound N to the exact maximum
// observed in the data, clearing violation state — the periodic
// constraint adjustment of the Maintenance module. It returns the
// adjusted constraints in the paper's notation.
func (s *Schema) Retighten() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.constraints))
	for _, c := range s.constraints {
		if ix, ok := s.indexes[c.ID()]; ok {
			ix.Retighten()
		}
		out = append(out, c.String())
	}
	return out
}

// Conforms checks D |= A: every index bucket within its bound and no
// invalid indices.
func (s *Schema) Conforms() (bool, []Violation) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var all []Violation
	for _, ix := range s.indexes {
		if ok, v := ix.Conforms(); !ok {
			all = append(all, v...)
		}
		all = append(all, ix.Violations()...)
	}
	return len(all) == 0, all
}

// Write serialises the schema in the paper's textual notation, one
// constraint per line. Lines starting with # are comments.
func (s *Schema) Write(w io.Writer) error {
	for _, c := range s.Constraints() {
		if _, err := fmt.Fprintln(w, c.String()); err != nil {
			return err
		}
	}
	return nil
}

// ReadConstraints parses a constraint file (one constraint per line,
// # comments and blank lines ignored) against the database schema.
func ReadConstraints(db *schema.Database, r io.Reader) ([]*Constraint, error) {
	var out []*Constraint
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		c, err := ParseConstraint(db, text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, c)
	}
	return out, sc.Err()
}
