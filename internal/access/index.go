package access

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// indexShards is the number of independently locked partitions of an
// index. Keys are routed by hash, so the shards load-balance regardless
// of key distribution; a power of two keeps the routing a mask. 16
// shards are enough to make lock contention invisible at typical core
// counts while keeping the per-index footprint small.
const indexShards = 16

// Index is the modified hash index of paper §3: it takes the constraint's
// X attributes as key, and each key value points to a bucket holding the
// set of at most N distinct Y-values for that key.
//
// The index is maintained incrementally: it registers as an observer on
// its table, and per-bucket reference counts on Y-values keep deletions
// exact (a Y-value leaves the bucket only when its last witness row is
// deleted), implementing the Maintenance module of the AS Catalog.
//
// The bucket table is partitioned into indexShards shards, each guarded
// by its own RWMutex and keyed by a hash of the encoded X-key. Shards
// make the index independently lockable (parallel bounded plans probe
// different shards without contending) and independently buildable
// (BuildIndex folds large tables shard-parallel). The key encoding is
// untouched — FetchWeightedEncoded accepts exactly the value.Key bytes
// it always did.
type Index struct {
	C *Constraint

	xPos, yPos []int // attribute positions in the base relation

	shards [indexShards]indexShard

	// AutoWiden controls the violation policy during maintenance: when a
	// bucket would exceed N, the index either widens N to the new
	// cardinality (true, the paper's "periodically adjusts constraints")
	// or records the violation and keeps the tuple out of the index,
	// marking the index invalid (false).
	AutoWiden bool

	// vmu guards the violation state and the constraint-bound widening;
	// it is taken only when a bucket grows past the current bound.
	vmu        sync.Mutex
	invalid    bool
	violations []Violation
}

// indexShard is one partition of the bucket table.
type indexShard struct {
	mu      sync.RWMutex
	buckets map[string]*bucket
	maxN    int   // largest bucket cardinality observed in this shard
	tuples  int64 // distinct Y-values over this shard's buckets
	// sizes is the shard's exact bucket-cardinality histogram:
	// sizes[k] = number of X-keys with exactly k distinct Y-values. It is
	// maintained incrementally on every insert and delete, so the
	// statistics catalog reads fan-out distributions (mean, p50, p95,
	// max) without scanning the buckets.
	sizes map[int]int64
}

type bucket struct {
	// order preserves first-insertion order of distinct Y-values so that
	// fetches are deterministic; counts[i] is the number of base rows
	// witnessing order[i] (the multiplicity needed for SQL bag semantics).
	order  []value.Row
	counts []int64
	// refs maps the Y encoding to its position in order.
	refs map[string]int
}

// shardOf routes an encoded X-key to its shard. The hash only spreads
// keys across shards; bucket contents and fetch results are independent
// of it.
func shardOf(key string) uint32 {
	return value.HashKey(key) & (indexShards - 1)
}

// BuildIndex scans the table and constructs the index for c. It fails if
// the instance does not conform to c (some bucket exceeds N), unless
// autoWiden is set, in which case N is widened to the observed maximum.
//
// BuildIndex reads the table without pinning it; callers that attach
// the index as a mutation observer afterwards should instead combine
// newIndex + buildFrom under storage.Table.ObserveBuild, as
// access.Schema.Register does, so no concurrent insert can slip between
// the scan and the registration.
func BuildIndex(c *Constraint, t *storage.Table, autoWiden bool) (*Index, error) {
	idx, err := newIndex(c, t, autoWiden)
	if err != nil {
		return nil, err
	}
	if err := idx.buildFrom(t.Rows()); err != nil {
		return nil, err
	}
	return idx, nil
}

// newIndex prepares an empty index for c over t's relation.
func newIndex(c *Constraint, t *storage.Table, autoWiden bool) (*Index, error) {
	xPos, err := t.Rel.AttrIndices(c.X)
	if err != nil {
		return nil, err
	}
	yPos, err := t.Rel.AttrIndices(c.Y)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		C:         c,
		xPos:      xPos,
		yPos:      yPos,
		AutoWiden: autoWiden,
	}
	for s := range ix.shards {
		ix.shards[s].buckets = make(map[string]*bucket)
		ix.shards[s].sizes = make(map[int]int64)
	}
	return ix, nil
}

// parallelBuildThreshold is the table size below which buildFrom stays
// single-threaded: the fan-out bookkeeping costs more than it saves on
// small relations.
const parallelBuildThreshold = 1 << 14

// buildFrom folds rows into the empty index and enforces conformance
// (widening N instead when AutoWiden is set). Large tables build
// shard-parallel: the encoded X-keys are computed in chunk-parallel
// first, then one worker per shard folds its rows in table order, so
// every bucket's Y-value order is identical to a sequential build.
func (ix *Index) buildFrom(rows []value.Row) error {
	if workers := runtime.GOMAXPROCS(0); len(rows) >= parallelBuildThreshold && workers > 1 {
		ix.buildParallel(rows, workers)
	} else {
		var kb []byte
		for _, row := range rows {
			kb = value.AppendRowKey(kb[:0], row, ix.xPos)
			sh := &ix.shards[shardOf(string(kb))]
			sh.insert(kb, row, ix.yPos)
		}
	}
	if maxN := ix.MaxBucket(); maxN > ix.C.N {
		if !ix.AutoWiden {
			return fmt.Errorf("access: building index for %v: instance does not conform (max %d distinct Y-values per key)", ix.C, maxN)
		}
		ix.C.N = maxN
	}
	return nil
}

// buildParallel is the shard-parallel fold: phase one computes each
// row's shard in parallel chunks, phase two routes the rows into
// per-shard index lists (sequential, cheap), and phase three lets
// workers fold whole shards concurrently — no two workers ever touch
// the same bucket, and rows reach each shard in table order. Keys are
// encoded twice (once to route, once to insert) into reused buffers,
// which beats persisting an encoded key string per row.
func (ix *Index) buildParallel(rows []value.Row, workers int) {
	shard := make([]uint8, len(rows))
	chunk := (len(rows) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(rows))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var kb []byte
			for i := lo; i < hi; i++ {
				kb = value.AppendRowKey(kb[:0], rows[i], ix.xPos)
				shard[i] = uint8(shardOf(string(kb)))
			}
		}(lo, hi)
	}
	wg.Wait()

	var byShard [indexShards][]int32
	for i := range rows {
		s := shard[i]
		byShard[s] = append(byShard[s], int32(i))
	}

	for s := 0; s < indexShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := &ix.shards[s]
			var kb []byte
			for _, i := range byShard[s] {
				kb = value.AppendRowKey(kb[:0], rows[i], ix.xPos)
				sh.insert(kb, rows[i], ix.yPos)
			}
		}(s)
	}
	wg.Wait()
}

// insert folds one row into the shard's bucket for the encoded X-key
// and returns the bucket's new cardinality. The key bytes are only
// copied when a new bucket is created, so steady-state maintenance is
// allocation-free. The caller must either own the shard exclusively
// (build) or hold sh.mu (maintenance).
func (sh *indexShard) insert(xKey []byte, row value.Row, yPos []int) int {
	b, ok := sh.buckets[string(xKey)]
	if !ok {
		b = &bucket{refs: make(map[string]int, 1)}
		sh.buckets[string(xKey)] = b
	}
	var kb [48]byte
	yk := value.AppendRowKey(kb[:0], row, yPos)
	if pos, ok := b.refs[string(yk)]; ok {
		b.counts[pos]++
		return len(b.order)
	}
	y := row.Project(yPos)
	b.refs[string(yk)] = len(b.order)
	b.order = append(b.order, y)
	b.counts = append(b.counts, 1)
	sh.tuples++
	// Bucket cardinality transition old → old+1 in the size histogram.
	if old := len(b.order) - 1; old > 0 {
		if sh.sizes[old]--; sh.sizes[old] == 0 {
			delete(sh.sizes, old)
		}
	}
	sh.sizes[len(b.order)]++
	if len(b.order) > sh.maxN {
		sh.maxN = len(b.order)
	}
	return len(b.order)
}

// Fetch returns the distinct Y-values associated with key (the values of
// the X attributes, in constraint order). The returned rows are the
// index's own storage and must not be mutated. The second result is the
// number of (partial) tuples accessed, which by conformance is ≤ N.
func (ix *Index) Fetch(key []value.Value) ([]value.Row, int) {
	rows, _, n := ix.FetchWeightedEncoded(value.Key(key))
	return rows, n
}

// FetchWeighted is Fetch plus the witness count of every distinct
// Y-value: counts[i] base rows carry rows[i]. The bounded executor uses
// the counts to preserve SQL bag semantics (duplicate base rows, COUNT)
// while still fetching only distinct partial tuples.
func (ix *Index) FetchWeighted(key []value.Value) (rows []value.Row, counts []int64, accessed int) {
	return ix.FetchWeightedEncoded(value.Key(key))
}

// FetchWeightedEncoded is FetchWeighted for a key already passed through
// value.Key. The bounded executor encodes each probe key once for its
// memoisation table and reuses the encoding here instead of re-encoding.
// Only the key's shard is read-locked, so concurrent probes — including
// the workers of a single parallel bounded plan — proceed independently.
func (ix *Index) FetchWeightedEncoded(key string) (rows []value.Row, counts []int64, accessed int) {
	sh := &ix.shards[shardOf(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	b, ok := sh.buckets[key]
	if !ok {
		return nil, nil, 0
	}
	return b.order, b.counts, len(b.order)
}

// Contains reports whether any tuple with the given X-value exists.
func (ix *Index) Contains(key []value.Value) bool {
	k := value.Key(key)
	sh := &ix.shards[shardOf(k)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.buckets[k]
	return ok
}

// Buckets returns the number of distinct X-values.
func (ix *Index) Buckets() int {
	total := 0
	for s := range ix.shards {
		sh := &ix.shards[s]
		sh.mu.RLock()
		total += len(sh.buckets)
		sh.mu.RUnlock()
	}
	return total
}

// Tuples returns the total number of distinct (X, Y) pairs stored — the
// index footprint used by the discovery module's storage budget.
func (ix *Index) Tuples() int64 {
	var total int64
	for s := range ix.shards {
		sh := &ix.shards[s]
		sh.mu.RLock()
		total += sh.tuples
		sh.mu.RUnlock()
	}
	return total
}

// FanoutHist returns the index's exact bucket-cardinality histogram:
// hist[k] = number of X-keys with exactly k distinct Y-values. It is
// maintained incrementally under the same observer hooks as the buckets
// themselves (Insert/Delete/LoadCSV and WAL replay), so reading it never
// scans the index. The statistics catalog derives the per-constraint
// fan-out distribution (mean, p50, p95, max) from it.
func (ix *Index) FanoutHist() map[int]int64 {
	out := make(map[int]int64)
	for s := range ix.shards {
		sh := &ix.shards[s]
		sh.mu.RLock()
		for k, n := range sh.sizes {
			out[k] += n
		}
		sh.mu.RUnlock()
	}
	return out
}

// MaxBucket returns the largest observed bucket cardinality; conformance
// holds while MaxBucket ≤ C.N.
func (ix *Index) MaxBucket() int {
	maxN := 0
	for s := range ix.shards {
		sh := &ix.shards[s]
		sh.mu.RLock()
		if sh.maxN > maxN {
			maxN = sh.maxN
		}
		sh.mu.RUnlock()
	}
	return maxN
}

// Invalid reports whether maintenance detected a violation under the
// strict (non-widening) policy; an invalid index must not be used for
// bounded plans until rebuilt.
func (ix *Index) Invalid() bool {
	ix.vmu.Lock()
	defer ix.vmu.Unlock()
	return ix.invalid
}

// Violations returns the violations recorded under the strict policy.
func (ix *Index) Violations() []Violation {
	ix.vmu.Lock()
	defer ix.vmu.Unlock()
	return append([]Violation(nil), ix.violations...)
}

// OnInsert implements storage.Observer: incremental index maintenance for
// a newly inserted base row. Only the row's shard is write-locked.
func (ix *Index) OnInsert(row value.Row) {
	var kb [48]byte
	xk := value.AppendRowKey(kb[:0], row, ix.xPos)
	sh := &ix.shards[shardOf(string(xk))]
	sh.mu.Lock()
	n := sh.insert(xk, row, ix.yPos)
	sh.mu.Unlock()
	if n > ix.C.N {
		ix.vmu.Lock()
		defer ix.vmu.Unlock()
		if n <= ix.C.N { // another widening got here first
			return
		}
		if ix.AutoWiden {
			ix.C.N = n
		} else {
			ix.invalid = true
			ix.violations = append(ix.violations, Violation{
				Constraint: ix.C,
				XKey:       row.Project(ix.xPos),
				Count:      n,
			})
		}
	}
}

// OnDelete implements storage.Observer: removes one witness of the row's
// Y-value; the Y-value leaves the bucket when its last witness goes.
func (ix *Index) OnDelete(row value.Row) {
	var kb [48]byte
	xKey := string(value.AppendRowKey(kb[:0], row, ix.xPos))
	sh := &ix.shards[shardOf(xKey)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.buckets[xKey]
	if !ok {
		return
	}
	yKey := value.Key(row.Project(ix.yPos))
	pos, ok := b.refs[yKey]
	if !ok {
		return
	}
	b.counts[pos]--
	if b.counts[pos] > 0 {
		return
	}
	// Bucket cardinality transition old → old-1 in the size histogram.
	if old := len(b.order); old > 0 {
		if sh.sizes[old]--; sh.sizes[old] == 0 {
			delete(sh.sizes, old)
		}
		if old > 1 {
			sh.sizes[old-1]++
		}
	}
	// Remove the Y-value: swap the last element into its slot.
	last := len(b.order) - 1
	moved := b.order[last]
	b.order[pos] = moved
	b.counts[pos] = b.counts[last]
	b.order = b.order[:last]
	b.counts = b.counts[:last]
	if pos < last {
		b.refs[value.Key(moved)] = pos
	}
	delete(b.refs, yKey)
	sh.tuples--
	if len(b.order) == 0 {
		delete(sh.buckets, xKey)
	}
	// maxN is an upper bound; deletions never invalidate conformance so we
	// leave it (Rebuild recomputes it exactly).
}

// Retighten recomputes the exact maximum bucket cardinality and adjusts
// the constraint's bound N to it, clearing any violation state — the
// Maintenance module's "periodically adjusts constraints in A" (§3).
// Tightening N improves every bound the BE Checker deduces with this
// constraint. It returns the new N.
func (ix *Index) Retighten() int {
	maxN := 0
	for s := range ix.shards {
		sh := &ix.shards[s]
		sh.mu.Lock()
		shMax := 0
		for _, b := range sh.buckets {
			if len(b.order) > shMax {
				shMax = len(b.order)
			}
		}
		sh.maxN = shMax
		sh.mu.Unlock()
		if shMax > maxN {
			maxN = shMax
		}
	}
	if maxN == 0 {
		maxN = 1 // an empty relation conforms to any positive bound
	}
	ix.vmu.Lock()
	ix.C.N = maxN
	ix.invalid = false
	ix.violations = nil
	ix.vmu.Unlock()
	return maxN
}

// Conforms re-scans the index state and reports whether every bucket is
// within the constraint's bound, with the offending buckets if not.
func (ix *Index) Conforms() (bool, []Violation) {
	var out []Violation
	for s := range ix.shards {
		sh := &ix.shards[s]
		sh.mu.RLock()
		for _, b := range sh.buckets {
			if len(b.order) > ix.C.N {
				out = append(out, Violation{Constraint: ix.C, Count: len(b.order)})
			}
		}
		sh.mu.RUnlock()
	}
	return len(out) == 0, out
}
