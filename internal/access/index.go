package access

import (
	"fmt"
	"sync"

	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// Index is the modified hash index of paper §3: it takes the constraint's
// X attributes as key, and each key value points to a bucket holding the
// set of at most N distinct Y-values for that key.
//
// The index is maintained incrementally: it registers as an observer on
// its table, and per-bucket reference counts on Y-values keep deletions
// exact (a Y-value leaves the bucket only when its last witness row is
// deleted), implementing the Maintenance module of the AS Catalog.
type Index struct {
	C *Constraint

	xPos, yPos []int // attribute positions in the base relation

	mu      sync.RWMutex
	buckets map[string]*bucket
	maxN    int   // largest bucket cardinality observed
	tuples  int64 // total distinct Y-values over all buckets (index size)

	// AutoWiden controls the violation policy during maintenance: when a
	// bucket would exceed N, the index either widens N to the new
	// cardinality (true, the paper's "periodically adjusts constraints")
	// or records the violation and keeps the tuple out of the index,
	// marking the index invalid (false).
	AutoWiden bool

	invalid    bool
	violations []Violation
}

type bucket struct {
	// order preserves first-insertion order of distinct Y-values so that
	// fetches are deterministic; counts[i] is the number of base rows
	// witnessing order[i] (the multiplicity needed for SQL bag semantics).
	order  []value.Row
	counts []int64
	// refs maps the Y encoding to its position in order.
	refs map[string]int
}

// BuildIndex scans the table and constructs the index for c. It fails if
// the instance does not conform to c (some bucket exceeds N), unless
// autoWiden is set, in which case N is widened to the observed maximum.
//
// BuildIndex reads the table without pinning it; callers that attach
// the index as a mutation observer afterwards should instead combine
// newIndex + buildFrom under storage.Table.ObserveBuild, as
// access.Schema.Register does, so no concurrent insert can slip between
// the scan and the registration.
func BuildIndex(c *Constraint, t *storage.Table, autoWiden bool) (*Index, error) {
	idx, err := newIndex(c, t, autoWiden)
	if err != nil {
		return nil, err
	}
	if err := idx.buildFrom(t.Rows()); err != nil {
		return nil, err
	}
	return idx, nil
}

// newIndex prepares an empty index for c over t's relation.
func newIndex(c *Constraint, t *storage.Table, autoWiden bool) (*Index, error) {
	xPos, err := t.Rel.AttrIndices(c.X)
	if err != nil {
		return nil, err
	}
	yPos, err := t.Rel.AttrIndices(c.Y)
	if err != nil {
		return nil, err
	}
	return &Index{
		C:         c,
		xPos:      xPos,
		yPos:      yPos,
		buckets:   make(map[string]*bucket),
		AutoWiden: autoWiden,
	}, nil
}

// buildFrom folds rows into the empty index and enforces conformance
// (widening N instead when AutoWiden is set).
func (ix *Index) buildFrom(rows []value.Row) error {
	for _, row := range rows {
		ix.insertLocked(row)
	}
	if ix.maxN > ix.C.N {
		if !ix.AutoWiden {
			return fmt.Errorf("access: building index for %v: instance does not conform (max %d distinct Y-values per key)", ix.C, ix.maxN)
		}
		ix.C.N = ix.maxN
	}
	return nil
}

// Fetch returns the distinct Y-values associated with key (the values of
// the X attributes, in constraint order). The returned rows are the
// index's own storage and must not be mutated. The second result is the
// number of (partial) tuples accessed, which by conformance is ≤ N.
func (ix *Index) Fetch(key []value.Value) ([]value.Row, int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	b, ok := ix.buckets[value.Key(key)]
	if !ok {
		return nil, 0
	}
	return b.order, len(b.order)
}

// FetchWeighted is Fetch plus the witness count of every distinct
// Y-value: counts[i] base rows carry rows[i]. The bounded executor uses
// the counts to preserve SQL bag semantics (duplicate base rows, COUNT)
// while still fetching only distinct partial tuples.
func (ix *Index) FetchWeighted(key []value.Value) (rows []value.Row, counts []int64, accessed int) {
	return ix.FetchWeightedEncoded(value.Key(key))
}

// FetchWeightedEncoded is FetchWeighted for a key already passed through
// value.Key. The bounded executor encodes each probe key once for its
// memoisation table and reuses the encoding here instead of re-encoding.
func (ix *Index) FetchWeightedEncoded(key string) (rows []value.Row, counts []int64, accessed int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	b, ok := ix.buckets[key]
	if !ok {
		return nil, nil, 0
	}
	return b.order, b.counts, len(b.order)
}

// Contains reports whether any tuple with the given X-value exists.
func (ix *Index) Contains(key []value.Value) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.buckets[value.Key(key)]
	return ok
}

// Buckets returns the number of distinct X-values.
func (ix *Index) Buckets() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.buckets)
}

// Tuples returns the total number of distinct (X, Y) pairs stored — the
// index footprint used by the discovery module's storage budget.
func (ix *Index) Tuples() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tuples
}

// MaxBucket returns the largest observed bucket cardinality; conformance
// holds while MaxBucket ≤ C.N.
func (ix *Index) MaxBucket() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.maxN
}

// Invalid reports whether maintenance detected a violation under the
// strict (non-widening) policy; an invalid index must not be used for
// bounded plans until rebuilt.
func (ix *Index) Invalid() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.invalid
}

// Violations returns the violations recorded under the strict policy.
func (ix *Index) Violations() []Violation {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]Violation(nil), ix.violations...)
}

// OnInsert implements storage.Observer: incremental index maintenance for
// a newly inserted base row.
func (ix *Index) OnInsert(row value.Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.insertLocked(row)
	if ix.maxN > ix.C.N {
		if ix.AutoWiden {
			ix.C.N = ix.maxN
		} else {
			ix.invalid = true
			ix.violations = append(ix.violations, Violation{
				Constraint: ix.C,
				XKey:       row.Project(ix.xPos),
				Count:      ix.maxN,
			})
		}
	}
}

func (ix *Index) insertLocked(row value.Row) {
	var kb [48]byte
	b, ok := ix.buckets[string(value.AppendRowKey(kb[:0], row, ix.xPos))]
	if !ok {
		b = &bucket{refs: make(map[string]int, 1)}
		ix.buckets[string(value.AppendRowKey(kb[:0], row, ix.xPos))] = b
	}
	yk := value.AppendRowKey(kb[:0], row, ix.yPos)
	if pos, ok := b.refs[string(yk)]; ok {
		b.counts[pos]++
		return
	}
	y := row.Project(ix.yPos)
	b.refs[string(yk)] = len(b.order)
	b.order = append(b.order, y)
	b.counts = append(b.counts, 1)
	ix.tuples++
	if len(b.order) > ix.maxN {
		ix.maxN = len(b.order)
	}
}

// OnDelete implements storage.Observer: removes one witness of the row's
// Y-value; the Y-value leaves the bucket when its last witness goes.
func (ix *Index) OnDelete(row value.Row) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var kb [48]byte
	xKey := string(value.AppendRowKey(kb[:0], row, ix.xPos))
	b, ok := ix.buckets[xKey]
	if !ok {
		return
	}
	yKey := value.Key(row.Project(ix.yPos))
	pos, ok := b.refs[yKey]
	if !ok {
		return
	}
	b.counts[pos]--
	if b.counts[pos] > 0 {
		return
	}
	// Remove the Y-value: swap the last element into its slot.
	last := len(b.order) - 1
	moved := b.order[last]
	b.order[pos] = moved
	b.counts[pos] = b.counts[last]
	b.order = b.order[:last]
	b.counts = b.counts[:last]
	if pos < last {
		b.refs[value.Key(moved)] = pos
	}
	delete(b.refs, yKey)
	ix.tuples--
	if len(b.order) == 0 {
		delete(ix.buckets, xKey)
	}
	// maxN is an upper bound; deletions never invalidate conformance so we
	// leave it (Rebuild recomputes it exactly).
}

// Retighten recomputes the exact maximum bucket cardinality and adjusts
// the constraint's bound N to it, clearing any violation state — the
// Maintenance module's "periodically adjusts constraints in A" (§3).
// Tightening N improves every bound the BE Checker deduces with this
// constraint. It returns the new N.
func (ix *Index) Retighten() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	maxN := 0
	for _, b := range ix.buckets {
		if len(b.order) > maxN {
			maxN = len(b.order)
		}
	}
	if maxN == 0 {
		maxN = 1 // an empty relation conforms to any positive bound
	}
	ix.maxN = maxN
	ix.C.N = maxN
	ix.invalid = false
	ix.violations = nil
	return maxN
}

// Conforms re-scans the index state and reports whether every bucket is
// within the constraint's bound, with the offending buckets if not.
func (ix *Index) Conforms() (bool, []Violation) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Violation
	for _, b := range ix.buckets {
		if len(b.order) > ix.C.N {
			out = append(out, Violation{Constraint: ix.C, Count: len(b.order)})
		}
	}
	return len(out) == 0, out
}
