// Package access implements access schemas, the foundation of BEAS
// (paper §2): access constraints ψ = R(X → Y, N) combining a cardinality
// constraint ("every X-value has at most N distinct Y-values") with a
// modified hash index that retrieves exactly those distinct Y-values.
//
// The package also provides the AS Catalog services of paper §3:
// conformance checking, index construction, incremental maintenance under
// inserts and deletes, and (de)serialisation of access schemas.
package access

import (
	"fmt"
	"sort"
	"strings"

	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/value"
)

// Constraint is an access constraint R(X → Y, N): for every X-value in an
// instance of R there are at most N distinct Y-values, and the associated
// index retrieves them by accessing at most N (partial) tuples.
type Constraint struct {
	Rel string   // relation name
	X   []string // key attributes
	Y   []string // fetched attributes
	N   int      // cardinality bound
}

// NewConstraint validates and normalises a constraint against the database
// schema: attribute names are resolved case-insensitively, duplicates
// within X or Y are rejected, and Y attributes that also appear in X are
// allowed (the index then simply repeats the key attribute).
func NewConstraint(db *schema.Database, rel string, x, y []string, n int) (*Constraint, error) {
	r, ok := db.Relation(rel)
	if !ok {
		return nil, fmt.Errorf("access: unknown relation %q", rel)
	}
	if n <= 0 {
		return nil, fmt.Errorf("access: constraint on %s: N must be positive, got %d", rel, n)
	}
	if len(y) == 0 {
		return nil, fmt.Errorf("access: constraint on %s: Y must not be empty", rel)
	}
	check := func(attrs []string, side string) ([]string, error) {
		seen := make(map[string]bool, len(attrs))
		out := make([]string, len(attrs))
		for i, a := range attrs {
			idx, ok := r.AttrIndex(a)
			if !ok {
				return nil, fmt.Errorf("access: constraint on %s: no attribute %q", rel, a)
			}
			canon := r.Attrs[idx].Name
			if seen[canon] {
				return nil, fmt.Errorf("access: constraint on %s: duplicate attribute %q in %s", rel, a, side)
			}
			seen[canon] = true
			out[i] = canon
		}
		return out, nil
	}
	cx, err := check(x, "X")
	if err != nil {
		return nil, err
	}
	cy, err := check(y, "Y")
	if err != nil {
		return nil, err
	}
	return &Constraint{Rel: r.Name, X: cx, Y: cy, N: n}, nil
}

// String renders the constraint in the paper's notation,
// e.g. call({pnum, date} -> {recnum, region}, 500).
func (c *Constraint) String() string {
	return fmt.Sprintf("%s({%s} -> {%s}, %d)",
		c.Rel, strings.Join(c.X, ", "), strings.Join(c.Y, ", "), c.N)
}

// ID returns a canonical identity string: relation plus sorted X and Y.
// Two constraints with the same ID constrain the same attribute mapping
// (possibly with different N).
func (c *Constraint) ID() string {
	x := append([]string(nil), c.X...)
	y := append([]string(nil), c.Y...)
	sort.Strings(x)
	sort.Strings(y)
	return fmt.Sprintf("%s|%s|%s", strings.ToLower(c.Rel),
		strings.ToLower(strings.Join(x, ",")), strings.ToLower(strings.Join(y, ",")))
}

// HasX reports whether attr (case-insensitive) is in X.
func (c *Constraint) HasX(attr string) bool { return containsFold(c.X, attr) }

// HasY reports whether attr (case-insensitive) is in Y.
func (c *Constraint) HasY(attr string) bool { return containsFold(c.Y, attr) }

// Covers reports whether every attribute in attrs appears in X ∪ Y.
func (c *Constraint) Covers(attrs []string) bool {
	for _, a := range attrs {
		if !c.HasX(a) && !c.HasY(a) {
			return false
		}
	}
	return true
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// ParseConstraint parses the paper's textual notation:
//
//	call({pnum, date} -> {recnum, region}, 500)
//
// Singleton sets may omit the braces: business({type,region} -> pnum, 2000).
func ParseConstraint(db *schema.Database, s string) (*Constraint, error) {
	orig := s
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("access: malformed constraint %q", orig)
	}
	rel := strings.TrimSpace(s[:open])
	body := s[open+1 : len(s)-1]
	arrow := strings.Index(body, "->")
	if arrow < 0 {
		return nil, fmt.Errorf("access: malformed constraint %q: missing ->", orig)
	}
	xPart := strings.TrimSpace(body[:arrow])
	rest := strings.TrimSpace(body[arrow+2:])
	comma := strings.LastIndexByte(rest, ',')
	if comma < 0 {
		return nil, fmt.Errorf("access: malformed constraint %q: missing N", orig)
	}
	yPart := strings.TrimSpace(rest[:comma])
	var n int
	if _, err := fmt.Sscanf(strings.TrimSpace(rest[comma+1:]), "%d", &n); err != nil {
		return nil, fmt.Errorf("access: malformed constraint %q: bad N: %w", orig, err)
	}
	parseSet := func(p string) []string {
		p = strings.TrimSpace(p)
		p = strings.TrimPrefix(p, "{")
		p = strings.TrimSuffix(p, "}")
		parts := strings.Split(p, ",")
		out := make([]string, 0, len(parts))
		for _, a := range parts {
			if a = strings.TrimSpace(a); a != "" {
				out = append(out, a)
			}
		}
		return out
	}
	return NewConstraint(db, rel, parseSet(xPart), parseSet(yPart), n)
}

// Violation describes a cardinality violation found by conformance
// checking: an X-value with more than N distinct Y-values.
type Violation struct {
	Constraint *Constraint
	XKey       []value.Value
	Count      int
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	parts := make([]string, len(v.XKey))
	for i, x := range v.XKey {
		parts[i] = x.String()
	}
	return fmt.Sprintf("%v violated at X=(%s): %d distinct Y-values (bound %d)",
		v.Constraint, strings.Join(parts, ", "), v.Count, v.Constraint.N)
}
