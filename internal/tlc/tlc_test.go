package tlc

import (
	"testing"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// TestShape pins the benchmark to the paper's description: 12 relations,
// 285 attributes, 12 built-in queries (11 from the original corpus plus
// the optimizer-exercising Q12).
func TestShape(t *testing.T) {
	rels := Relations()
	if len(rels) != 12 {
		t.Errorf("relations = %d, want 12", len(rels))
	}
	if got := TotalAttributes(); got != 285 {
		t.Errorf("attributes = %d, want 285", got)
	}
	if got := len(Queries()); got != 12 {
		t.Errorf("queries = %d, want 12", got)
	}
	covered := 0
	for _, q := range Queries() {
		if q.Covered {
			covered++
		}
	}
	if covered != 11 {
		t.Errorf("covered queries = %d, want 11 (>90%%)", covered)
	}
}

// TestPaperConstraintsVerbatim checks ψ1–ψ3 of Example 1 appear exactly.
func TestPaperConstraintsVerbatim(t *testing.T) {
	specs := AccessSchemaSpecs()
	want := []string{
		"call({pnum, date} -> {recnum, region}, 500)",
		"package({pnum, year} -> {pid, start, end}, 12)",
		"business({type, region} -> pnum, 2000)",
	}
	for i, w := range want {
		if specs[i] != w {
			t.Errorf("spec %d = %q, want %q", i, specs[i], w)
		}
	}
}

func generate(t *testing.T, scale int, seed int64) *storage.Store {
	t.Helper()
	store := storage.NewStore(Database())
	if err := Generate(store, Config{Scale: scale, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return store
}

// TestGeneratorConforms: generated instances must satisfy every reference
// constraint at multiple scales — D |= A is the precondition of the whole
// theory.
func TestGeneratorConforms(t *testing.T) {
	for _, scale := range []int{1, 3} {
		store := generate(t, scale, 99)
		as := access.NewSchema(store)
		for _, spec := range AccessSchemaSpecs() {
			c, err := access.ParseConstraint(store.DB, spec)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := as.Register(c, false); err != nil {
				t.Errorf("scale %d: %v", scale, err)
			}
		}
		if ok, viols := as.Conforms(); !ok {
			t.Errorf("scale %d: %d violations", scale, len(viols))
		}
	}
}

// TestGeneratorDeterministic: same seed, same bytes.
func TestGeneratorDeterministic(t *testing.T) {
	a := generate(t, 1, 7)
	b := generate(t, 1, 7)
	for _, name := range a.Names() {
		ta, _ := a.Table(name)
		tb, _ := b.Table(name)
		if ta.Len() != tb.Len() {
			t.Fatalf("%s: %d vs %d rows", name, ta.Len(), tb.Len())
		}
		for i := 0; i < ta.Len(); i += 97 { // spot-check rows
			if value.Key(ta.Row(i)) != value.Key(tb.Row(i)) {
				t.Fatalf("%s row %d differs between identical seeds", name, i)
			}
		}
	}
	c := generate(t, 1, 8)
	tc, _ := c.Table("call")
	taCall, _ := a.Table("call")
	same := true
	for i := 0; i < tc.Len() && i < taCall.Len(); i += 101 {
		if value.Key(tc.Row(i)) != value.Key(taCall.Row(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical call tables")
	}
}

// TestScaleGrowsRows: row counts grow linearly with scale.
func TestScaleGrowsRows(t *testing.T) {
	r1 := Config{Scale: 1}.Rows()
	r4 := Config{Scale: 4}.Rows()
	if r4["call"] != 4*r1["call"] {
		t.Errorf("call rows: %d vs %d", r1["call"], r4["call"])
	}
	if r4["plan_catalog"] != r1["plan_catalog"] {
		t.Errorf("the catalogue is a dimension table and must not scale")
	}
}

// TestQueriesAnalyzeAndMatchVerdicts: every built-in query parses,
// resolves, and gets the documented coverage verdict under the reference
// schema.
func TestQueriesAnalyzeAndMatchVerdicts(t *testing.T) {
	store := generate(t, 1, 1)
	as := access.NewSchema(store)
	for _, spec := range AccessSchemaSpecs() {
		c, err := access.ParseConstraint(store.DB, spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := as.Register(c, false); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range Queries() {
		stmt, err := sqlparser.Parse(q.SQL)
		if err != nil {
			t.Errorf("%s: parse: %v", q.Name, err)
			continue
		}
		aq, err := analyze.Analyze(stmt.Select, store.DB)
		if err != nil {
			t.Errorf("%s: analyze: %v", q.Name, err)
			continue
		}
		chk := core.Check(aq, as)
		if chk.Covered != q.Covered {
			t.Errorf("%s: covered = %v, want %v (%s)", q.Name, chk.Covered, q.Covered, chk.Reason)
		}
	}
}

func TestQueryByName(t *testing.T) {
	if q, ok := QueryByName("Q1"); !ok || q.Name != "Q1" {
		t.Error("QueryByName(Q1) failed")
	}
	if _, ok := QueryByName("Q99"); ok {
		t.Error("QueryByName(Q99) should miss")
	}
}

// TestPlantedWitnesses: the default parameters must hit data at any
// scale, so experiment answers are non-empty and scale-independent.
func TestPlantedWitnesses(t *testing.T) {
	store := generate(t, 2, 20170514)
	count := func(table string, match func(value.Row) bool) int {
		tab, _ := store.Table(table)
		n := 0
		for _, r := range tab.Rows() {
			if match(r) {
				n++
			}
		}
		return n
	}
	banks := count("business", func(r value.Row) bool {
		return r[6].S == ParamType && r[7].S == ParamRegion
	})
	if banks < 25 {
		t.Errorf("planted banks = %d, want >= 25", banks)
	}
	calls := count("call", func(r value.Row) bool {
		return r[2].I == int64(ParamDate) && r[0].I == int64(ParamPnum)
	})
	if calls == 0 {
		t.Error("no planted calls for ParamPnum on ParamDate")
	}
	invoices := count("billing", func(r value.Row) bool {
		return r[1].I == int64(ParamPnum)
	})
	if invoices == 0 {
		t.Error("no planted invoices for ParamPnum")
	}
}
