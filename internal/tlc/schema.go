// Package tlc is a synthetic stand-in for the proprietary
// telecommunication benchmark of the paper's evaluation ("TLC": 12
// relations, 285 attributes, 12 built-in analytical queries; name
// withheld by the authors). The three relations the paper discloses
// (call, package, business) and the access constraints ψ1–ψ3 of Example 1
// are embedded verbatim; the remaining relations model the usual CDR
// analytics estate (SMS, data usage, billing, payments, complaints,
// roaming, towers, catalogues). A deterministic generator produces
// instances that conform to the reference access schema at any scale.
package tlc

import (
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/value"
)

func attr(name string, k value.Kind) schema.Attribute {
	return schema.Attribute{Name: name, Kind: k}
}

func ints(names ...string) []schema.Attribute {
	out := make([]schema.Attribute, len(names))
	for i, n := range names {
		out[i] = attr(n, value.Int)
	}
	return out
}

func strs(names ...string) []schema.Attribute {
	out := make([]schema.Attribute, len(names))
	for i, n := range names {
		out[i] = attr(n, value.String)
	}
	return out
}

func floats(names ...string) []schema.Attribute {
	out := make([]schema.Attribute, len(names))
	for i, n := range names {
		out[i] = attr(n, value.Float)
	}
	return out
}

func cat(groups ...[]schema.Attribute) []schema.Attribute {
	var out []schema.Attribute
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// Relations returns the 12 TLC relation schemas (285 attributes total).
func Relations() []*schema.Relation {
	return []*schema.Relation{
		// call: one row per voice call detail record. 30 attributes.
		schema.MustRelation("call", cat(
			ints("pnum", "recnum", "date", "time", "duration"),
			strs("region", "call_type", "direction", "tech", "country"),
			ints("cell_id", "imsi", "imei", "switch_id", "trunk_in", "trunk_out",
				"termination_code", "setup_ms", "lac", "cid", "operator_id", "record_id", "file_seq"),
			strs("drop_code", "rate_plan", "currency"),
			floats("mos_score", "charge"),
			ints("roaming_flag", "forwarded"),
		)...),

		// sms: one row per SMS record. 22 attributes.
		schema.MustRelation("sms", cat(
			ints("pnum", "recnum", "date", "time", "length", "retry_count",
				"cell_id", "imsi", "roaming_flag", "operator_id", "record_id",
				"priority", "segments", "port", "smsc_id"),
			strs("region", "encoding", "msg_type", "status", "country", "currency"),
			floats("charge"),
		)...),

		// data_usage: one row per data session aggregate. 24 attributes.
		schema.MustRelation("data_usage", cat(
			ints("pnum", "date", "session_count", "cell_id", "imsi", "qci",
				"roaming_flag", "operator_id", "record_id", "peak_kbps",
				"avg_kbps", "ttfb_ms", "duration_s"),
			strs("region", "app_type", "apn", "rat_type", "country", "currency"),
			floats("mb_used", "mb_up", "mb_down", "charge", "loss_pct"),
		)...),

		// package: service package subscriptions. 18 attributes.
		schema.MustRelation("package", cat(
			ints("pnum", "start", "end", "year", "auto_renew", "signup_date",
				"cancel_date", "agent_id", "family_flag", "record_id"),
			strs("pid", "status", "channel", "promo_code", "currency", "region"),
			floats("discount_pct", "monthly_fee"),
		)...),

		// plan_catalog: the package catalogue. 20 attributes.
		schema.MustRelation("plan_catalog", cat(
			strs("pid", "name", "category", "currency", "region_scope", "tier", "support_level"),
			floats("monthly_fee", "overage_data", "overage_voice", "intro_fee"),
			ints("data_cap_mb", "voice_cap_min", "sms_cap", "intro_months",
				"family_max", "active", "launch_year", "retire_year", "contract_months"),
		)...),

		// business: business subscriber registry. 16 attributes.
		schema.MustRelation("business", cat(
			ints("pnum", "employees", "founded_year", "contact_pnum", "active", "record_id"),
			strs("type", "region", "name", "vat_id", "city", "street", "postcode",
				"segment", "credit_class", "account_mgr"),
		)...),

		// customer: consumer subscriber registry. 28 attributes.
		schema.MustRelation("customer", cat(
			ints("pnum", "age", "join_date", "churn_date", "birth_year",
				"marketing_opt_in", "family_id", "referrer_pnum", "loyalty_points", "record_id"),
			strs("name", "gender", "city", "region", "street", "postcode",
				"email_domain", "status", "segment", "credit_class", "nationality",
				"language", "id_type", "loyalty_tier", "arpu_band", "device_brand",
				"device_model", "os_type"),
		)...),

		// billing: monthly invoices. 24 attributes.
		schema.MustRelation("billing", cat(
			ints("invoice_id", "pnum", "month", "year", "due_date", "paid_date",
				"dunning_level", "cycle", "record_id"),
			floats("amount", "tax", "discount", "voice_amount", "data_amount",
				"sms_amount", "roaming_amount", "other_amount", "balance_before",
				"balance_after", "adjustments"),
			strs("currency", "status", "payment_method", "region"),
		)...),

		// payment: payment transactions. 18 attributes.
		schema.MustRelation("payment", cat(
			ints("payment_id", "pnum", "date", "invoice_id", "bank_code",
				"retry_count", "operator_id", "reversal_flag", "agent_id", "record_id"),
			floats("amount", "fee"),
			strs("currency", "method", "channel", "status", "card_type", "region"),
		)...),

		// complaint: customer-care cases. 22 attributes.
		schema.MustRelation("complaint", cat(
			ints("complaint_id", "pnum", "date", "agent_id", "open_days",
				"escalated", "satisfaction", "related_invoice", "related_cell",
				"text_length", "reopen_count", "sla_breached", "record_id"),
			strs("category", "subcategory", "channel", "status", "priority",
				"region", "resolution_code", "currency"),
			floats("refund_amount"),
		)...),

		// roaming: daily roaming usage aggregates. 20 attributes.
		schema.MustRelation("roaming", cat(
			ints("pnum", "date", "operator_id", "minutes_out", "minutes_in",
				"sms_out", "session_count", "imsi", "day_cap_hit", "passes_used", "record_id"),
			strs("country", "currency", "region_home", "tadig", "network_tech",
				"rate_zone", "direction"),
			floats("mb_used", "charge"),
		)...),

		// cell_tower: radio site inventory and configuration. 43 attributes.
		schema.MustRelation("cell_tower", cat(
			ints("cell_id", "height_m", "sectors", "install_year",
				"last_upgrade_year", "backhaul_mbps", "max_capacity",
				"lease_expiry_year", "battery_hours", "alarm_count",
				"downtime_min", "carrier_count", "mimo", "tilt", "earfcn",
				"pci", "tac", "lac", "rnc_id", "cluster_id", "indoor_flag",
				"shared_flag", "beamforming", "record_id"),
			strs("region", "city", "tech", "band", "vendor", "backhaul_type",
				"site_type", "owner", "energy_class", "maintenance_zone",
				"status"),
			floats("lat", "lon", "azimuth", "bandwidth_mhz", "power_w",
				"avg_load_pct", "peak_load_pct", "coverage_km"),
		)...),
	}
}

// Database returns the TLC database schema.
func Database() *schema.Database {
	db, err := schema.NewDatabase(Relations()...)
	if err != nil {
		panic(err)
	}
	return db
}

// TotalAttributes returns the attribute count over all relations (the
// paper reports 285).
func TotalAttributes() int {
	total := 0
	for _, r := range Relations() {
		total += r.Arity()
	}
	return total
}
