package tlc

import "fmt"

// AccessSchemaSpecs returns the reference access schema A_TLC in the
// paper's textual notation. ψ1–ψ3 are the constraints of the paper's
// Example 1, verbatim; the rest extend them to the other relations in the
// same spirit (bounds chosen as realistic business rules: at most 12
// packages per number and year, one registry row per number, at most 500
// distinct callees per number and day, ...).
func AccessSchemaSpecs() []string {
	return []string{
		// The paper's ψ1–ψ3 (Example 1).
		"call({pnum, date} -> {recnum, region}, 500)",
		"package({pnum, year} -> {pid, start, end}, 12)",
		"business({type, region} -> pnum, 2000)",
		// Extensions over the remaining relations.
		"sms({pnum, date} -> {recnum, region}, 300)",
		"data_usage({pnum, date} -> {app_type, mb_used, region}, 200)",
		"billing({pnum, year} -> {month, amount, status}, 12)",
		"customer(pnum -> {name, region, segment, city, age}, 1)",
		"plan_catalog(pid -> {name, category, monthly_fee, data_cap_mb}, 1)",
		"complaint({category, region} -> {pnum, date, status}, 2000)",
		"roaming(pnum -> {date, country, minutes_out, mb_used, charge}, 400)",
		"cell_tower(cell_id -> {region, city, tech}, 1)",
		"payment(pnum -> {date, amount, method, status}, 100)",
	}
}

// Query is one built-in TLC analytical query.
type Query struct {
	Name string
	// Description says what the analyst is asking.
	Description string
	SQL         string
	// Covered is the expected BE Checker verdict under AccessSchemaSpecs.
	Covered bool
}

// Queries returns the 12 built-in analytical queries of the benchmark.
// Q1 is the paper's Example 2 verbatim (with the benchmark's default
// parameters); Q11 is deliberately not covered, exercising the partially
// bounded path; Q12's worst-case-greedy step order is deliberately
// suboptimal on the actual data, exercising the cost-based optimizer.
// 11/12 covered reproduces the paper's "more than 90% of their queries".
func Queries() []Query {
	month := (ParamDate / 100) % 100
	return []Query{
		{
			Name: "Q1",
			Description: fmt.Sprintf(
				"Example 2: regions with numbers called on %d by business numbers of type %q in region %q holding package %q in %d",
				ParamDate, ParamType, ParamRegion, ParamPackage, Year),
			SQL: fmt.Sprintf(`
SELECT call.region
FROM call, package, business
WHERE business.type = '%s' AND business.region = '%s'
  AND business.pnum = call.pnum AND call.date = %d
  AND call.pnum = package.pnum AND package.year = %d
  AND package.start <= %d AND package.end >= %d
  AND package.pid = '%s'`,
				ParamType, ParamRegion, ParamDate, Year, month, month, ParamPackage),
			Covered: true,
		},
		{
			Name:        "Q2",
			Description: "who did this number call on this day, and where",
			SQL: fmt.Sprintf(
				`SELECT recnum, region FROM call WHERE pnum = %d AND date = %d`,
				ParamPnum, ParamDate),
			Covered: true,
		},
		{
			Name:        "Q3",
			Description: "per-region call counts of a number on a day",
			SQL: fmt.Sprintf(`
SELECT region, COUNT(*) AS calls
FROM call WHERE pnum = %d AND date = %d
GROUP BY region ORDER BY calls DESC, region`,
				ParamPnum, ParamDate),
			Covered: true,
		},
		{
			Name:        "Q4",
			Description: "a subscriber's profile with current-year packages",
			SQL: fmt.Sprintf(`
SELECT customer.name, package.pid, package.start, package.end
FROM customer, package
WHERE customer.pnum = %d AND package.pnum = customer.pnum AND package.year = %d`,
				ParamPnum, Year),
			Covered: true,
		},
		{
			Name:        "Q5",
			Description: "SMS recipients of a number on a day it also placed calls",
			SQL: fmt.Sprintf(`
SELECT DISTINCT sms.recnum
FROM call, sms
WHERE call.pnum = %d AND call.date = %d
  AND sms.pnum = call.pnum AND sms.date = call.date`,
				ParamPnum, ParamDate),
			Covered: true,
		},
		{
			Name:        "Q6",
			Description: "a subscriber's invoice history for the year",
			SQL: fmt.Sprintf(`
SELECT month, amount, status
FROM billing WHERE pnum = %d AND year = %d
ORDER BY month`,
				ParamPnum, Year),
			Covered: true,
		},
		{
			Name:        "Q7",
			Description: "monthly revenue from businesses of a type in a region",
			SQL: fmt.Sprintf(`
SELECT billing.month, SUM(billing.amount) AS total
FROM business, billing
WHERE business.type = '%s' AND business.region = '%s'
  AND billing.pnum = business.pnum AND billing.year = %d
GROUP BY billing.month ORDER BY billing.month`,
				ParamType, ParamRegion, Year),
			Covered: true,
		},
		{
			Name:        "Q8",
			Description: "which customer segments file a complaint category in a region",
			SQL: fmt.Sprintf(`
SELECT customer.segment, COUNT(*) AS n
FROM complaint, customer
WHERE complaint.category = '%s' AND complaint.region = '%s'
  AND customer.pnum = complaint.pnum
GROUP BY customer.segment ORDER BY n DESC, customer.segment`,
				ParamCategory, ParamRegion),
			Covered: true,
		},
		{
			Name:        "Q9",
			Description: "a subscriber's roaming spend by country in a date window",
			SQL: fmt.Sprintf(`
SELECT country, SUM(charge) AS spend
FROM roaming
WHERE pnum = %d AND date BETWEEN 20160301 AND 20160331
GROUP BY country ORDER BY country`,
				ParamPnum),
			Covered: true,
		},
		{
			Name:        "Q10",
			Description: "bank counts across selected regions (IN-list seeding)",
			SQL: fmt.Sprintf(`
SELECT business.region, COUNT(DISTINCT business.pnum) AS banks
FROM business
WHERE business.type = '%s' AND business.region IN ('r0', '%s', 'r2')
GROUP BY business.region ORDER BY business.region`,
				ParamType, ParamRegion),
			Covered: true,
		},
		{
			Name:        "Q11",
			Description: "long calls received by banks in a region (not covered: call is keyed on recnum/duration, which no constraint indexes)",
			SQL: fmt.Sprintf(`
SELECT business.pnum, COUNT(*) AS long_calls
FROM business, call
WHERE business.type = '%s' AND business.region = '%s'
  AND call.recnum = business.pnum AND call.duration > 3000
GROUP BY business.pnum ORDER BY long_calls DESC, business.pnum`,
				ParamType, ParamRegion),
			Covered: false,
		},
		{
			Name: "Q12",
			Description: "invoice months of banks in a region whose calls on a day reached a target region " +
				"(the worst-case-greedy step order fetches every bank's invoices before the selective call filter " +
				"prunes the banks; the cost-based optimizer fetches calls first)",
			SQL: fmt.Sprintf(`
SELECT billing.month, COUNT(*) AS n
FROM business, call, billing
WHERE business.type = '%s' AND business.region = '%s'
  AND call.pnum = business.pnum AND call.date = %d AND call.region = '%s'
  AND billing.pnum = business.pnum AND billing.year = %d
GROUP BY billing.month ORDER BY billing.month`,
				ParamType, ParamRegion, ParamDate, ParamCallRegion, Year),
			Covered: true,
		},
	}
}

// QueryByName returns a built-in query.
func QueryByName(name string) (Query, bool) {
	for _, q := range Queries() {
		if q.Name == name {
			return q, true
		}
	}
	return Query{}, false
}
