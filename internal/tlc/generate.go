package tlc

import (
	"fmt"
	"math/rand"

	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// Domain constants shared by the generator and the built-in queries.
var (
	// Regions r0..r11.
	Regions = []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11"}
	// BusinessTypes of registered business numbers.
	BusinessTypes = []string{"bank", "hospital", "school", "retail", "hotel",
		"restaurant", "logistics", "pharmacy", "garage", "insurance",
		"lawfirm", "clinic", "agency", "factory", "utility"}
	// ComplaintCategories of care cases.
	ComplaintCategories = []string{"billing", "coverage", "speed", "roaming",
		"activation", "portability", "device", "fraud"}
	// Countries visited by roamers.
	Countries = []string{"DE", "FR", "ES", "IT", "UK", "US", "CN", "JP", "PL", "NL"}
	// AppTypes of data sessions.
	AppTypes = []string{"video", "social", "web", "mail", "maps", "gaming", "voip", "other"}
)

// Default query parameters: the generator plants data so that the
// built-in queries are non-empty with these values at every scale.
const (
	// ParamType/ParamRegion/ParamDate/ParamPackage are t0, r0, d0, c0 of
	// the paper's Example 2.
	ParamType    = "bank"
	ParamRegion  = "r1"
	ParamDate    = 20160315
	ParamPackage = "c0"
	// ParamPnum is a planted consumer number used by single-subscriber
	// queries; ParamBizPnum a planted business number.
	ParamPnum    = 1001
	ParamBizPnum = 500001
	// ParamCategory is a complaint category with planted cases.
	ParamCategory = "coverage"
	// ParamCallRegion is the destination-region filter of Q12; some of the
	// planted bank calls on ParamDate land there (their regions are drawn
	// uniformly from Regions), so the answer is non-empty at every scale
	// while the filter still prunes most banks.
	ParamCallRegion = "r9"
	// Year is the observation year of the generated records.
	Year = 2016
)

// Config sizes a generated TLC instance. Scale 1 is the smallest unit;
// row counts grow linearly with Scale (the stand-in for the paper's
// 1 GB → 200 GB sweep).
type Config struct {
	Scale int
	Seed  int64
}

// Rows returns the per-relation row counts for the configuration.
func (c Config) Rows() map[string]int {
	s := c.Scale
	if s < 1 {
		s = 1
	}
	nCust := 400*s + 400
	return map[string]int{
		"call":         4000 * s,
		"sms":          1500 * s,
		"data_usage":   1500 * s,
		"package":      2 * nCust,
		"plan_catalog": 60,
		"business":     150*s + 150,
		"customer":     nCust,
		"billing":      3 * nCust,
		"payment":      2 * nCust,
		"complaint":    250 * s,
		"roaming":      400 * s,
		"cell_tower":   200 + 20*s,
	}
}

// Generate fills a store (over Database()) with a deterministic TLC
// instance of the given scale. The instance conforms to the reference
// access schema (AccessSchema) and guarantees non-empty answers for the
// built-in queries with the default parameters.
func Generate(store *storage.Store, cfg Config) error {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := cfg.Rows()
	nCust := rows["customer"]
	nBiz := rows["business"]

	custPnums := make([]int64, nCust)
	for i := range custPnums {
		custPnums[i] = int64(1000 + i)
	}
	bizPnums := make([]int64, nBiz)
	for i := range bizPnums {
		bizPnums[i] = int64(500000 + i)
	}
	// Callers are drawn from both populations.
	allPnums := append(append([]int64(nil), custPnums...), bizPnums...)

	g := &generator{store: store, rng: rng}
	g.planCatalog(rows["plan_catalog"])
	g.customers(custPnums)
	g.businesses(bizPnums)
	g.packages(custPnums, bizPnums)
	g.cellTowers(rows["cell_tower"])
	g.calls(allPnums, rows["call"])
	g.sms(allPnums, rows["sms"])
	g.dataUsage(custPnums, rows["data_usage"])
	g.billing(custPnums, bizPnums)
	g.payments(custPnums, rows["payment"])
	g.complaints(custPnums, rows["complaint"])
	g.roaming(custPnums, rows["roaming"])
	return g.err
}

type generator struct {
	store *storage.Store
	rng   *rand.Rand
	err   error
}

func (g *generator) insert(table string, vals ...value.Value) {
	if g.err != nil {
		return
	}
	t, ok := g.store.Table(table)
	if !ok {
		g.err = fmt.Errorf("tlc: no table %q", table)
		return
	}
	if err := t.Insert(value.Row(vals)); err != nil {
		g.err = fmt.Errorf("tlc: inserting into %s: %w", table, err)
	}
}

func vi(i int64) value.Value   { return value.NewInt(i) }
func vs(s string) value.Value  { return value.NewString(s) }
func vf(f float64) value.Value { return value.NewFloat(f) }

func (g *generator) pick(list []string) string { return list[g.rng.Intn(len(list))] }

// date returns a YYYYMMDD int in March 2016 (the observation window is
// deliberately dense so per-(pnum, date) buckets are populated).
func (g *generator) date() int64 {
	return int64(20160300 + 1 + g.rng.Intn(30))
}

func (g *generator) planCatalog(n int) {
	for i := 0; i < n; i++ {
		pid := fmt.Sprintf("c%d", i)
		g.insert("plan_catalog",
			vs(pid), vs("plan "+pid), vs(g.pick([]string{"voice", "data", "combo", "iot"})),
			vs("EUR"), vs(g.pick([]string{"national", "regional", "global"})),
			vs(g.pick([]string{"basic", "silver", "gold"})), vs(g.pick([]string{"web", "phone", "premium"})),
			vf(float64(5+i%40)), vf(0.01*float64(1+i%9)), vf(0.05*float64(1+i%5)), vf(float64(i%10)),
			vi(int64(1000*(1+i%20))), vi(int64(100*(1+i%30))), vi(int64(50*(1+i%10))),
			vi(int64(i%6)), vi(int64(1+i%5)), vi(1), vi(int64(2008+i%9)), vi(0), vi(int64(12*(i%3))),
		)
	}
}

func (g *generator) customers(pnums []int64) {
	segments := []string{"youth", "family", "senior", "premium", "standard"}
	for i, p := range pnums {
		region := Regions[g.rng.Intn(len(Regions))]
		if p == ParamPnum {
			region = ParamRegion
		}
		g.insert("customer",
			vi(p), vi(int64(18+g.rng.Intn(70))), vi(20100000+int64(g.rng.Intn(60000))),
			vi(0), vi(int64(1950+g.rng.Intn(55))), vi(int64(g.rng.Intn(2))),
			vi(int64(g.rng.Intn(len(pnums)/4+1))), vi(0), vi(int64(g.rng.Intn(20000))), vi(int64(i)),
			vs(fmt.Sprintf("cust-%d", p)), vs(g.pick([]string{"f", "m", "x"})),
			vs("city-"+region), vs(region), vs(fmt.Sprintf("street %d", g.rng.Intn(400))),
			vs(fmt.Sprintf("%05d", g.rng.Intn(99999))), vs(g.pick([]string{"mail.com", "box.net", "tele.org"})),
			vs(g.pick([]string{"active", "active", "active", "suspended"})),
			vs(segments[g.rng.Intn(len(segments))]), vs(g.pick([]string{"A", "B", "C"})),
			vs(g.pick([]string{"DE", "FR", "ES", "IT"})), vs(g.pick([]string{"de", "fr", "es", "en"})),
			vs(g.pick([]string{"id", "passport"})), vs(g.pick([]string{"none", "bronze", "silver", "gold"})),
			vs(g.pick([]string{"low", "mid", "high"})), vs(g.pick([]string{"apple", "samsung", "xiaomi", "nokia"})),
			vs(fmt.Sprintf("model-%d", g.rng.Intn(50))), vs(g.pick([]string{"ios", "android"})),
		)
	}
}

func (g *generator) businesses(pnums []int64) {
	for i, p := range pnums {
		typ := BusinessTypes[g.rng.Intn(len(BusinessTypes))]
		region := Regions[g.rng.Intn(len(Regions))]
		// Plant: the first 40 businesses are banks in ParamRegion, so
		// Example 2 always has witnesses (well below the ψ3 bound 2000).
		if i < 40 {
			typ, region = ParamType, ParamRegion
		}
		g.insert("business",
			vi(p), vi(int64(1+g.rng.Intn(5000))), vi(int64(1950+g.rng.Intn(70))),
			vi(p), vi(1), vi(int64(i)),
			vs(typ), vs(region), vs(fmt.Sprintf("biz-%d", p)),
			vs(fmt.Sprintf("VAT%08d", p)), vs("city-"+region),
			vs(fmt.Sprintf("street %d", g.rng.Intn(400))), vs(fmt.Sprintf("%05d", g.rng.Intn(99999))),
			vs(g.pick([]string{"sme", "corporate", "public"})), vs(g.pick([]string{"A", "B", "C"})),
			vs(fmt.Sprintf("mgr-%d", g.rng.Intn(50))),
		)
	}
}

func (g *generator) packages(cust, biz []int64) {
	addPkg := func(p int64, pid string, start, end int64) {
		g.insert("package",
			vi(p), vi(start), vi(end), vi(Year), vi(int64(g.rng.Intn(2))),
			vi(20151200+int64(g.rng.Intn(31))), vi(0), vi(int64(g.rng.Intn(200))),
			vi(int64(g.rng.Intn(2))), vi(p*10+start),
			vs(pid), vs("active"), vs(g.pick([]string{"web", "shop", "phone"})),
			vs(""), vs("EUR"), vs(Regions[g.rng.Intn(len(Regions))]),
			vf(float64(g.rng.Intn(30))), vf(float64(5+g.rng.Intn(60))),
		)
	}
	// Every subscriber holds 1–2 packages; months within one year, so the
	// ψ2 bound of 12 distinct packages per (pnum, year) holds trivially.
	for _, p := range cust {
		pid := fmt.Sprintf("c%d", g.rng.Intn(60))
		if p == ParamPnum {
			pid = ParamPackage
		}
		start := int64(1 + g.rng.Intn(6))
		addPkg(p, pid, start, start+int64(g.rng.Intn(6)))
		if g.rng.Intn(2) == 0 {
			addPkg(p, fmt.Sprintf("c%d", g.rng.Intn(60)), 1, 12)
		}
	}
	for i, p := range biz {
		pid := fmt.Sprintf("c%d", g.rng.Intn(60))
		start, end := int64(1+g.rng.Intn(6)), int64(7+g.rng.Intn(6))
		// Plant: the first 25 businesses (banks in ParamRegion) hold
		// ParamPackage over a window containing March.
		if i < 25 {
			pid, start, end = ParamPackage, 1, 12
		}
		addPkg(p, pid, start, end)
	}
}

func (g *generator) cellTowers(n int) {
	for i := 0; i < n; i++ {
		region := Regions[i%len(Regions)]
		g.insert("cell_tower",
			vi(int64(7000+i)), vi(int64(10+g.rng.Intn(60))), vi(int64(1+g.rng.Intn(6))),
			vi(int64(2000+g.rng.Intn(20))), vi(int64(2015+g.rng.Intn(10))),
			vi(int64(100*(1+g.rng.Intn(100)))), vi(int64(500+g.rng.Intn(5000))),
			vi(int64(2026+g.rng.Intn(10))), vi(int64(2+g.rng.Intn(8))),
			vi(int64(g.rng.Intn(20))), vi(int64(g.rng.Intn(600))),
			vi(int64(1+g.rng.Intn(4))), vi(int64(2+2*g.rng.Intn(3))), vi(int64(g.rng.Intn(12))),
			vi(int64(g.rng.Intn(65000))), vi(int64(g.rng.Intn(504))), vi(int64(g.rng.Intn(65000))),
			vi(int64(g.rng.Intn(65000))), vi(int64(g.rng.Intn(100))), vi(int64(g.rng.Intn(40))),
			vi(int64(g.rng.Intn(2))), vi(int64(g.rng.Intn(2))), vi(int64(g.rng.Intn(2))), vi(int64(i)),
			vs(region), vs("city-"+region), vs(g.pick([]string{"lte", "nr", "umts"})),
			vs(g.pick([]string{"b1", "b3", "b7", "b20", "n78"})),
			vs(g.pick([]string{"ericsson", "nokia", "huawei"})),
			vs(g.pick([]string{"fiber", "microwave"})), vs(g.pick([]string{"macro", "micro", "indoor"})),
			vs(g.pick([]string{"own", "shared"})), vs(g.pick([]string{"A", "B", "C"})),
			vs(fmt.Sprintf("zone-%d", g.rng.Intn(12))), vs("in_service"),
			vf(47+g.rng.Float64()*8), vf(6+g.rng.Float64()*9), vf(g.rng.Float64()*360),
			vf(float64(5*(1+g.rng.Intn(8)))), vf(10+g.rng.Float64()*30),
			vf(g.rng.Float64()*90), vf(g.rng.Float64()*100), vf(0.5+g.rng.Float64()*15),
		)
	}
}

func (g *generator) calls(pnums []int64, n int) {
	for i := 0; i < n; i++ {
		p := pnums[g.rng.Intn(len(pnums))]
		d := g.date()
		// Plant a fixed number of calls (independent of scale, keeping
		// the ψ1 buckets within bound): calls by the first 25 business
		// pnums (the banks holding ParamPackage) and by ParamPnum, all on
		// ParamDate.
		if i < 2000 && i%40 == 0 {
			p = 500000 + int64(i/40%25)
			d = ParamDate
		}
		if i < 2000 && i%97 == 0 {
			p = ParamPnum
			d = ParamDate
		}
		rec := pnums[g.rng.Intn(len(pnums))]
		region := Regions[g.rng.Intn(len(Regions))]
		g.insert("call",
			vi(p), vi(rec), vi(d), vi(int64(g.rng.Intn(86400))), vi(int64(1+g.rng.Intn(3600))),
			vs(region), vs(g.pick([]string{"voice", "video"})), vs(g.pick([]string{"mo", "mt"})),
			vs(g.pick([]string{"volte", "cs"})), vs("DE"),
			vi(int64(7000+g.rng.Intn(500))), vi(100000+p), vi(900000+p), vi(int64(g.rng.Intn(40))),
			vi(int64(g.rng.Intn(100))), vi(int64(g.rng.Intn(100))), vi(int64(g.rng.Intn(8))),
			vi(int64(50+g.rng.Intn(4000))), vi(int64(g.rng.Intn(65000))), vi(int64(g.rng.Intn(65000))),
			vi(int64(1+g.rng.Intn(5))), vi(int64(i)), vi(int64(i/1000)),
			vs(g.pick([]string{"", "q850-16", "q850-31"})), vs(g.pick([]string{"flat", "metered"})), vs("EUR"),
			vf(1+4*g.rng.Float64()), vf(g.rng.Float64()*2),
			vi(int64(g.rng.Intn(2))), vi(int64(g.rng.Intn(2))),
		)
	}
}

func (g *generator) sms(pnums []int64, n int) {
	for i := 0; i < n; i++ {
		p := pnums[g.rng.Intn(len(pnums))]
		d := g.date()
		if i < 2000 && i%61 == 0 {
			p, d = ParamPnum, ParamDate
		}
		g.insert("sms",
			vi(p), vi(pnums[g.rng.Intn(len(pnums))]), vi(d), vi(int64(g.rng.Intn(86400))),
			vi(int64(1+g.rng.Intn(160))), vi(int64(g.rng.Intn(3))),
			vi(int64(7000+g.rng.Intn(500))), vi(100000+p), vi(int64(g.rng.Intn(2))),
			vi(int64(1+g.rng.Intn(5))), vi(int64(i)), vi(int64(g.rng.Intn(3))),
			vi(int64(1+g.rng.Intn(3))), vi(0), vi(int64(1+g.rng.Intn(4))),
			vs(Regions[g.rng.Intn(len(Regions))]), vs(g.pick([]string{"gsm7", "ucs2"})),
			vs(g.pick([]string{"text", "binary"})), vs(g.pick([]string{"delivered", "pending", "failed"})),
			vs("DE"), vs("EUR"), vf(g.rng.Float64()*0.2),
		)
	}
}

func (g *generator) dataUsage(pnums []int64, n int) {
	for i := 0; i < n; i++ {
		p := pnums[g.rng.Intn(len(pnums))]
		d := g.date()
		if i < 2000 && i%53 == 0 {
			p, d = ParamPnum, ParamDate
		}
		up := g.rng.Float64() * 200
		down := g.rng.Float64() * 1800
		g.insert("data_usage",
			vi(p), vi(d), vi(int64(1+g.rng.Intn(40))), vi(int64(7000+g.rng.Intn(500))),
			vi(100000+p), vi(int64(6+g.rng.Intn(4))), vi(int64(g.rng.Intn(2))),
			vi(int64(1+g.rng.Intn(5))), vi(int64(i)), vi(int64(1000+g.rng.Intn(90000))),
			vi(int64(500+g.rng.Intn(20000))), vi(int64(10+g.rng.Intn(500))), vi(int64(60+g.rng.Intn(7200))),
			vs(Regions[g.rng.Intn(len(Regions))]), vs(AppTypes[g.rng.Intn(len(AppTypes))]),
			vs(g.pick([]string{"internet", "ims"})), vs(g.pick([]string{"lte", "nr"})),
			vs("DE"), vs("EUR"),
			vf(up+down), vf(up), vf(down), vf(g.rng.Float64()), vf(g.rng.Float64()*3),
		)
	}
}

func (g *generator) billing(cust, biz []int64) {
	invoice := int64(1)
	addYear := func(p int64) {
		months := 1 + g.rng.Intn(12)
		for m := 1; m <= months; m++ {
			amount := 10 + g.rng.Float64()*90
			g.insert("billing",
				vi(invoice), vi(p), vi(int64(m)), vi(Year),
				vi(int64(20160000+m*100+25)), vi(int64(20160000+m*100+27)),
				vi(int64(g.rng.Intn(3))), vi(1), vi(invoice),
				vf(amount), vf(amount*0.19), vf(g.rng.Float64()*5),
				vf(amount*0.4), vf(amount*0.4), vf(amount*0.05), vf(amount*0.1), vf(amount*0.05),
				vf(0), vf(amount), vf(0),
				vs("EUR"), vs(g.pick([]string{"paid", "paid", "open", "overdue"})),
				vs(g.pick([]string{"sepa", "card", "cash"})), vs(Regions[g.rng.Intn(len(Regions))]),
			)
			invoice++
		}
	}
	// Consumer invoices for a third of customers (always including the
	// planted ParamPnum), business invoices for every business (Q7 joins
	// business × billing).
	for i, p := range cust {
		if i%3 == 0 || p == ParamPnum {
			addYear(p)
		}
	}
	for _, p := range biz {
		addYear(p)
	}
}

func (g *generator) payments(pnums []int64, n int) {
	for i := 0; i < n; i++ {
		p := pnums[g.rng.Intn(len(pnums))]
		g.insert("payment",
			vi(int64(i+1)), vi(p), vi(g.date()), vi(int64(1+g.rng.Intn(1000000))),
			vi(int64(10000000+g.rng.Intn(89999999))), vi(int64(g.rng.Intn(3))),
			vi(int64(1+g.rng.Intn(5))), vi(int64(g.rng.Intn(50))), vi(int64(g.rng.Intn(200))), vi(int64(i)),
			vf(5+g.rng.Float64()*150), vf(g.rng.Float64()),
			vs("EUR"), vs(g.pick([]string{"sepa", "card", "cash", "wallet"})),
			vs(g.pick([]string{"app", "web", "shop"})), vs(g.pick([]string{"settled", "pending", "failed"})),
			vs(g.pick([]string{"visa", "mc", "none"})), vs(Regions[g.rng.Intn(len(Regions))]),
		)
	}
}

func (g *generator) complaints(pnums []int64, n int) {
	for i := 0; i < n; i++ {
		p := pnums[g.rng.Intn(len(pnums))]
		cat := ComplaintCategories[g.rng.Intn(len(ComplaintCategories))]
		region := Regions[g.rng.Intn(len(Regions))]
		// Plant coverage complaints in ParamRegion for Q8.
		if i < 2000 && i%17 == 0 {
			cat, region = ParamCategory, ParamRegion
		}
		g.insert("complaint",
			vi(int64(i+1)), vi(p), vi(g.date()), vi(int64(g.rng.Intn(200))),
			vi(int64(g.rng.Intn(30))), vi(int64(g.rng.Intn(2))), vi(int64(1+g.rng.Intn(5))),
			vi(int64(g.rng.Intn(1000000))), vi(int64(7000+g.rng.Intn(500))),
			vi(int64(50+g.rng.Intn(2000))), vi(int64(g.rng.Intn(3))), vi(int64(g.rng.Intn(2))), vi(int64(i)),
			vs(cat), vs(cat+"-sub"), vs(g.pick([]string{"phone", "app", "shop", "mail"})),
			vs(g.pick([]string{"open", "closed", "escalated"})), vs(g.pick([]string{"p1", "p2", "p3"})),
			vs(region), vs(g.pick([]string{"fixed", "refund", "info", "none"})), vs("EUR"),
			vf(g.rng.Float64()*30),
		)
	}
}

func (g *generator) roaming(pnums []int64, n int) {
	for i := 0; i < n; i++ {
		p := pnums[g.rng.Intn(len(pnums))]
		if i < 2000 && i%29 == 0 {
			p = ParamPnum
		}
		g.insert("roaming",
			vi(p), vi(g.date()), vi(int64(1+g.rng.Intn(5))),
			vi(int64(g.rng.Intn(120))), vi(int64(g.rng.Intn(60))), vi(int64(g.rng.Intn(30))),
			vi(int64(1+g.rng.Intn(20))), vi(100000+p), vi(int64(g.rng.Intn(2))),
			vi(int64(g.rng.Intn(3))), vi(int64(i)),
			vs(Countries[g.rng.Intn(len(Countries))]), vs("EUR"),
			vs(Regions[g.rng.Intn(len(Regions))]), vs(fmt.Sprintf("TAD%02d", g.rng.Intn(40))),
			vs(g.pick([]string{"lte", "nr", "umts"})), vs(g.pick([]string{"zone1", "zone2", "world"})),
			vs(g.pick([]string{"out", "in"})),
			vf(g.rng.Float64()*500), vf(g.rng.Float64()*25),
		)
	}
}
