package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/server"
)

// newOrdersDB builds a database where customer c owns exactly itemsPer
// items, covered by one access constraint — the same shape the server
// tests use, so captures carry bounded, covered baselines.
func newOrdersDB(tb testing.TB, customers, itemsPer int) *beas.DB {
	tb.Helper()
	db := beas.NewDB()
	db.MustCreateTable("orders", "cust INT", "item INT")
	for c := 0; c < customers; c++ {
		for j := 0; j < itemsPer; j++ {
			db.MustInsert("orders", c, c*10000+j)
		}
	}
	db.MustRegisterConstraint(fmt.Sprintf("orders({cust} -> {item}, %d)", itemsPer))
	return db
}

// record runs sqls against a capture-enabled server and returns the
// loaded capture records.
func record(t *testing.T, db *beas.DB, sqls []string) []obs.CaptureRecord {
	t.Helper()
	dir := t.TempDir()
	rec, err := obs.NewRecorder(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{Capture: rec})
	ts := httptest.NewServer(srv.Handler())
	for _, sql := range sqls {
		body, _ := json.Marshal(map[string]string{"sql": sql})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		// Drain fully: an unread body can register as a client disconnect
		// on the server, recording the statement as a non-baseline.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	ts.Close()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.LoadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

var workload = []string{
	"SELECT item FROM orders WHERE cust = 1",
	"SELECT item FROM orders WHERE cust = 2",
	"SELECT item FROM orders WHERE cust = 1",  // repeat: same fingerprint, distinct record
	"SELECT item FROM orders WHERE cust = 99", // covered key with zero rows
	"SELECT cust, item FROM orders WHERE cust = 0",
}

// TestCaptureReplayRoundTripDB is the end-to-end oracle: queries
// recorded over HTTP replay bit-identically against an independently
// built copy of the same data through the embedded-DB target.
func TestCaptureReplayRoundTripDB(t *testing.T) {
	recs := record(t, newOrdersDB(t, 4, 5), workload)
	if len(recs) != len(workload) {
		t.Fatalf("captured %d records, want %d", len(recs), len(workload))
	}
	for i, rc := range recs {
		if rc.Outcome != obs.OutcomeOK {
			t.Fatalf("record %d outcome %q", i, rc.Outcome)
		}
		if rc.RowsHash == "" || rc.Fingerprint == "" {
			t.Fatalf("record %d missing hash or fingerprint: %+v", i, rc)
		}
	}
	// The two executions of the cust=1 statement share a fingerprint.
	if recs[0].Fingerprint != recs[2].Fingerprint {
		t.Fatalf("repeat executions got different fingerprints: %q vs %q", recs[0].Fingerprint, recs[2].Fingerprint)
	}
	// ... and identical answers.
	if recs[0].RowsHash != recs[2].RowsHash {
		t.Fatalf("repeat executions hashed differently: %q vs %q", recs[0].RowsHash, recs[2].RowsHash)
	}

	replica := newOrdersDB(t, 4, 5)
	rep := Run(context.Background(), recs, &DBTarget{DB: replica}, Options{Concurrency: 2})
	if !rep.OK() {
		t.Fatalf("replay against identical replica diverged: %s\n%+v", rep.Summary(), rep.Mismatches)
	}
	if rep.Replayed != len(workload) || rep.Matched != len(workload) {
		t.Fatalf("replayed/matched = %d/%d, want %d/%d: %s", rep.Replayed, rep.Matched, len(workload), len(workload), rep.Summary())
	}
}

// TestCaptureReplayRoundTripHTTP replays the capture through the NDJSON
// wire protocol against a second server over the same data.
func TestCaptureReplayRoundTripHTTP(t *testing.T) {
	recs := record(t, newOrdersDB(t, 4, 5), workload)

	replica := server.New(newOrdersDB(t, 4, 5), server.Config{})
	ts := httptest.NewServer(replica.Handler())
	defer ts.Close()

	rep := Run(context.Background(), recs, &HTTPTarget{Base: ts.URL}, Options{})
	if !rep.OK() {
		t.Fatalf("HTTP replay diverged: %s\n%+v", rep.Summary(), rep.Mismatches)
	}
	if rep.Matched != len(workload) {
		t.Fatalf("matched %d of %d: %s", rep.Matched, len(workload), rep.Summary())
	}
}

// TestReplayDetectsDivergence proves the diff bites: a replica with one
// row changed fails the rows-hash (and row-count) comparison.
func TestReplayDetectsDivergence(t *testing.T) {
	recs := record(t, newOrdersDB(t, 4, 5), workload)

	// Same shape, same cardinalities, constraint intact — but one of
	// cust 1's item values differs, so only content diverges.
	tampered := beas.NewDB()
	tampered.MustCreateTable("orders", "cust INT", "item INT")
	for c := 0; c < 4; c++ {
		for j := 0; j < 5; j++ {
			item := c*10000 + j
			if c == 1 && j == 3 {
				item = 424242
			}
			tampered.MustInsert("orders", c, item)
		}
	}
	tampered.MustRegisterConstraint("orders({cust} -> {item}, 5)")
	rep := Run(context.Background(), recs, &DBTarget{DB: tampered}, Options{})
	if rep.OK() {
		t.Fatal("replay against tampered replica reported OK")
	}
	// Both executions of the cust=1 statement must be flagged.
	var rowMismatches int
	for _, mm := range rep.Mismatches {
		if mm.Field == "rows" || mm.Field == "rowsHash" {
			rowMismatches++
		}
	}
	if rowMismatches == 0 {
		t.Fatalf("no rows/rowsHash mismatch in %+v", rep.Mismatches)
	}
	// Untouched statements still match.
	if rep.Matched == 0 {
		t.Fatalf("no statement matched on a mostly-identical replica: %s", rep.Summary())
	}
	// Mismatches come back ordered by recorded sequence.
	for i := 1; i < len(rep.Mismatches); i++ {
		if rep.Mismatches[i].Seq < rep.Mismatches[i-1].Seq {
			t.Fatalf("mismatches out of order: %+v", rep.Mismatches)
		}
	}
}

// TestReplaySkipsNonBaselines: only outcome-"ok" records carry exact
// answers; everything else is context and must be skipped, as must
// records past the -max limit.
func TestReplaySkipsNonBaselines(t *testing.T) {
	now := time.Now()
	recs := []obs.CaptureRecord{
		{Seq: 1, Time: now, SQL: "SELECT item FROM orders WHERE cust = 1", Outcome: obs.OutcomeOK},
		{Seq: 2, Time: now, SQL: "SELECT item FROM orders WHERE cust = 2", Outcome: "failed"},
		{Seq: 3, Time: now, SQL: "SELECT item FROM orders WHERE cust = 3", Outcome: "approx", Coverage: 0.5},
		{Seq: 4, Time: now, SQL: "SELECT item FROM orders WHERE cust = 0", Outcome: obs.OutcomeOK},
	}
	db := newOrdersDB(t, 4, 5)
	// Fill in real baselines for the two ok records so they match.
	for i := range recs {
		if recs[i].Outcome != obs.OutcomeOK {
			continue
		}
		got := (&DBTarget{DB: db}).Replay(context.Background(), recs[i].SQL)
		recs[i].Rows, recs[i].RowsHash = got.Rows, got.RowsHash
		recs[i].Bound, recs[i].Mode = got.Bound, got.Mode
	}

	rep := Run(context.Background(), recs, &DBTarget{DB: db}, Options{})
	if !rep.OK() || rep.Replayed != 2 || rep.Skipped != 2 {
		t.Fatalf("replayed/skipped = %d/%d, want 2/2: %s", rep.Replayed, rep.Skipped, rep.Summary())
	}

	rep = Run(context.Background(), recs, &DBTarget{DB: db}, Options{Limit: 1})
	if rep.Replayed != 1 || rep.Skipped != 3 {
		t.Fatalf("with limit 1: replayed/skipped = %d/%d, want 1/3", rep.Replayed, rep.Skipped)
	}
}

// TestReplayReportsTargetErrors: a statement the target cannot execute
// (here: a table the replica does not have) is an error, not a match.
func TestReplayReportsTargetErrors(t *testing.T) {
	recs := []obs.CaptureRecord{
		{Seq: 1, SQL: "SELECT x FROM missing WHERE x = 1", Outcome: obs.OutcomeOK, Rows: 1},
	}
	rep := Run(context.Background(), recs, &DBTarget{DB: newOrdersDB(t, 1, 1)}, Options{})
	if rep.OK() || rep.Errors != 1 {
		t.Fatalf("errors = %d, want 1: %s", rep.Errors, rep.Summary())
	}
	if len(rep.Mismatches) != 1 || rep.Mismatches[0].Field != "error" {
		t.Fatalf("mismatches = %+v", rep.Mismatches)
	}
}
