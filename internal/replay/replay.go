// Package replay re-executes a flight-recorder capture against a live
// target — an embedded database or a running beasd — and diffs every
// answer against its recorded baseline: row count, order-sensitive row
// hash, deduced bound and evaluation mode. A clean replay proves the
// target returns bit-identical answers to the capture; any drift
// (data divergence, a planner change that reorders rows, a broken
// access schema) surfaces as a mismatch tied to the recorded sequence
// number.
package replay

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/value"
)

// Outcome is what a target observed re-executing one statement.
type Outcome struct {
	Rows     int64
	RowsHash string
	Bound    uint64
	Mode     string
	Err      error
}

// Target replays one statement and reports what came back.
type Target interface {
	Replay(ctx context.Context, sql string) Outcome
}

// DBTarget replays against an embedded database. Rows are hashed over
// the same JSON encoding the server streams, so hashes are directly
// comparable with HTTP-recorded baselines.
type DBTarget struct {
	DB *beas.DB
}

// jsonValue mirrors the server's wire encoding of one value.
func jsonValue(v value.Value) any {
	switch v.K {
	case value.Int:
		return v.I
	case value.Float:
		return v.F
	case value.String:
		return v.S
	case value.Bool:
		return v.I != 0
	default:
		return nil
	}
}

// Replay runs sql to completion and hashes the materialized answer.
func (t *DBTarget) Replay(ctx context.Context, sql string) Outcome {
	res, err := t.DB.QueryContext(ctx, sql)
	if err != nil {
		return Outcome{Err: err}
	}
	h := obs.NewRowHash()
	for _, r := range res.Rows {
		row := make([]any, len(r))
		for i, v := range r {
			row[i] = jsonValue(v)
		}
		h.Add(row)
	}
	return Outcome{
		Rows:     int64(len(res.Rows)),
		RowsHash: h.Sum(),
		Bound:    res.Stats.Bound,
		Mode:     string(res.Stats.Mode),
	}
}

// HTTPTarget replays against a running beasd over its NDJSON /query
// protocol. Rows are decoded with json.Number and re-marshalled
// verbatim, so the hash covers exactly the bytes the server sent — a
// replica answering with different content, order or encoding hashes
// differently.
type HTTPTarget struct {
	Base   string // e.g. http://127.0.0.1:8080
	Client *http.Client
}

type wireHeader struct {
	Columns   []string `json:"columns"`
	Admission string   `json:"admission"`
	Bound     uint64   `json:"bound"`
}

type wireLine struct {
	Rows  [][]any `json:"rows"`
	Stats *struct {
		Mode string `json:"mode"`
		Rows int64  `json:"rows"`
	} `json:"stats"`
	Error string `json:"error"`
}

// Replay POSTs sql and consumes the NDJSON stream.
func (t *HTTPTarget) Replay(ctx context.Context, sql string) Outcome {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	body, _ := json.Marshal(map[string]string{"sql": sql})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(t.Base, "/")+"/query", strings.NewReader(string(body)))
	if err != nil {
		return Outcome{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return Outcome{Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return Outcome{Err: fmt.Errorf("http %d: %s", resp.StatusCode, e.Error)}
		}
		return Outcome{Err: fmt.Errorf("http %d", resp.StatusCode)}
	}

	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var hdr wireHeader
	if err := dec.Decode(&hdr); err != nil {
		return Outcome{Err: fmt.Errorf("decoding header: %w", err)}
	}
	out := Outcome{Bound: hdr.Bound}
	h := obs.NewRowHash()
	sawTrailer := false
	for {
		var line wireLine
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				break
			}
			return Outcome{Err: fmt.Errorf("decoding stream: %w", err)}
		}
		switch {
		case line.Error != "":
			out.Err = fmt.Errorf("stream error: %s", line.Error)
			return out
		case line.Stats != nil:
			out.Mode = line.Stats.Mode
			sawTrailer = true
		default:
			for _, r := range line.Rows {
				h.Add(r)
				out.Rows++
			}
		}
	}
	if !sawTrailer {
		out.Err = fmt.Errorf("stream ended without stats trailer")
		return out
	}
	out.RowsHash = h.Sum()
	return out
}

// Options tunes a replay run.
type Options struct {
	// Speed scales recorded inter-arrival gaps: 1 replays in real time,
	// 2 twice as fast; <= 0 replays as fast as the target allows.
	Speed float64
	// Concurrency is the number of in-flight statements (min 1).
	Concurrency int
	// Limit caps how many baseline records are replayed (0 = all).
	Limit int
}

// Mismatch is one divergence between a recorded baseline and the
// target's answer.
type Mismatch struct {
	Seq   uint64 `json:"seq"`
	SQL   string `json:"sql"`
	Field string `json:"field"` // rows | rowsHash | bound | mode | error
	Want  string `json:"want"`
	Got   string `json:"got"`
}

// Report is the result of one replay run.
type Report struct {
	Total      int        `json:"total"`      // records in the capture
	Replayed   int        `json:"replayed"`   // baselines re-executed
	Skipped    int        `json:"skipped"`    // non-baseline records (errors, cancels, approximations)
	Matched    int        `json:"matched"`    // baselines with bit-identical answers
	Errors     int        `json:"errors"`     // replays that failed to execute
	Mismatches []Mismatch `json:"mismatches"` // ordered by recorded sequence number
	Duration   time.Duration
}

// OK reports whether every replayed baseline matched.
func (r *Report) OK() bool { return r.Errors == 0 && len(r.Mismatches) == 0 }

// Summary renders a one-line verdict.
func (r *Report) Summary() string {
	verdict := "OK"
	if !r.OK() {
		verdict = "MISMATCH"
	}
	return fmt.Sprintf("%s: %d/%d baselines matched (%d records, %d skipped, %d errors, %d mismatches) in %s",
		verdict, r.Matched, r.Replayed, r.Total, r.Skipped, r.Errors, len(r.Mismatches), r.Duration.Round(time.Millisecond))
}

// diff compares one recorded baseline against the target's answer.
func diff(rec obs.CaptureRecord, got Outcome) []Mismatch {
	var out []Mismatch
	mm := func(field, want, g string) {
		out = append(out, Mismatch{Seq: rec.Seq, SQL: rec.SQL, Field: field, Want: want, Got: g})
	}
	if got.Err != nil {
		mm("error", "ok", got.Err.Error())
		return out
	}
	if got.Rows != rec.Rows {
		mm("rows", fmt.Sprint(rec.Rows), fmt.Sprint(got.Rows))
	}
	if rec.RowsHash != "" && got.RowsHash != rec.RowsHash {
		mm("rowsHash", rec.RowsHash, got.RowsHash)
	}
	if got.Bound != rec.Bound {
		mm("bound", fmt.Sprint(rec.Bound), fmt.Sprint(got.Bound))
	}
	if rec.Mode != "" && got.Mode != rec.Mode {
		mm("mode", rec.Mode, got.Mode)
	}
	return out
}

// Run replays every baseline record (outcome "ok") against target,
// pacing dispatch by the recorded timestamps scaled by opts.Speed and
// keeping up to opts.Concurrency statements in flight. Non-baseline
// records — failures, cancellations, disconnects and approximated
// answers — are counted as skipped: they carry no exact answer to
// verify against.
func Run(ctx context.Context, recs []obs.CaptureRecord, target Target, opts Options) *Report {
	start := time.Now()
	rep := &Report{Total: len(recs)}
	var base time.Time
	var work []obs.CaptureRecord
	for _, rec := range recs {
		if rec.Outcome != obs.OutcomeOK {
			rep.Skipped++
			continue
		}
		if opts.Limit > 0 && len(work) >= opts.Limit {
			rep.Skipped++
			continue
		}
		if base.IsZero() {
			base = rec.Time
		}
		work = append(work, rec)
	}

	conc := opts.Concurrency
	if conc < 1 {
		conc = 1
	}
	jobs := make(chan obs.CaptureRecord)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rec := range jobs {
				got := target.Replay(ctx, rec.SQL)
				mms := diff(rec, got)
				mu.Lock()
				rep.Replayed++
				if got.Err != nil {
					rep.Errors++
				}
				if len(mms) == 0 {
					rep.Matched++
				} else {
					rep.Mismatches = append(rep.Mismatches, mms...)
				}
				mu.Unlock()
			}
		}()
	}

	for _, rec := range work {
		if opts.Speed > 0 {
			offset := time.Duration(float64(rec.Time.Sub(base)) / opts.Speed)
			if wait := time.Until(start.Add(offset)); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
				}
			}
		}
		if ctx.Err() != nil {
			break
		}
		select {
		case jobs <- rec:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}
	close(jobs)
	wg.Wait()

	sort.Slice(rep.Mismatches, func(i, j int) bool { return rep.Mismatches[i].Seq < rep.Mismatches[j].Seq })
	rep.Duration = time.Since(start)
	return rep
}
