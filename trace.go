package beas

import (
	"context"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/obs"
)

// Tracing and metrics wiring for the public API. The observability
// types themselves live in internal/obs and are re-exported here as
// aliases, so embedders configure tracing without importing an internal
// package.

// Tracer samples and retains query-lifecycle traces; see NewTracer.
type Tracer = obs.Tracer

// TracerOptions configures a Tracer.
type TracerOptions = obs.TracerOptions

// MetricsRegistry is a metrics registry with Prometheus text
// exposition; see NewMetricsRegistry.
type MetricsRegistry = obs.Registry

// NewTracer creates a query tracer for DB.SetTracer (or
// Options.Tracer). Every query run against a DB with a tracer installed
// records a span tree — parse, plan-cache outcome, check, optimize and
// per-fetch-step spans with estimated-vs-actual counters — and the
// tracer retains a sampled subset (plus everything slower than the slow
// threshold or force-kept) in a fixed-size ring for inspection.
func NewTracer(opts TracerOptions) *Tracer { return obs.NewTracer(opts) }

// NewMetricsRegistry creates an empty metrics registry for
// DB.SetMetrics (servers typically share one registry between the DB
// and their own counters).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// SetTracer installs (nil removes) the query tracer. Queries whose
// context already carries a trace — e.g. started by a serving layer —
// keep it; for all others the DB starts and finishes a trace itself.
func (db *DB) SetTracer(t *Tracer) { db.tracer.Store(t) }

// Tracer returns the installed query tracer (nil when tracing is off).
func (db *DB) Tracer() *Tracer { return db.tracer.Load() }

// startTrace returns ctx carrying a trace for one statement. A trace
// already on ctx is reused (finish is then a no-op — whoever started it
// finishes it); otherwise, with a tracer installed, a fresh trace
// starts here and finish stamps and retains it.
func (db *DB) startTrace(ctx context.Context, name, sql string) (context.Context, func()) {
	if tr, _ := obs.FromContext(ctx); tr != nil {
		return ctx, func() {}
	}
	t := db.tracer.Load()
	if t == nil {
		return ctx, func() {}
	}
	tr := t.StartTrace(name, obs.Attr{Key: "sql", Val: sql})
	return obs.With(ctx, tr, tr.Root()), func() { t.Finish(tr) }
}

// checkSpanLocked runs the BE checker and (when on) the cost-based
// optimizer over one UNION branch under "check" and "optimize" spans.
// Callers hold db.mu (read suffices).
func (db *DB) checkSpanLocked(ctx context.Context, q *analyze.Query) *core.CheckResult {
	_, csp := obs.StartSpan(ctx, "check")
	chk := core.Check(q, db.access)
	csp.Set("covered", chk.Covered).Set("bound", chk.TotalBound)
	csp.End()
	if db.optzr == nil {
		return chk
	}
	_, osp := obs.StartSpan(ctx, "optimize")
	chk = db.rewriteLocked(q, chk)
	osp.End()
	return chk
}

// SetMetrics wires the database's internal instrumentation into reg:
// plan-cache hit/miss counters, WAL append counters and fsync-latency
// histogram (via the log's observer hook), and durability gauges (WAL
// size, last LSN). Registration is get-or-create, so calling SetMetrics
// again — or pointing several databases at one registry — is safe; the
// WAL observer, however, is per-log, so the last call wins for it.
func (db *DB) SetMetrics(reg *MetricsRegistry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("beas_plan_cache_hits_total", "Query parses served from the plan cache.", nil, func() int64 {
		h, _ := db.PlanCacheStats()
		return int64(h)
	})
	reg.CounterFunc("beas_plan_cache_misses_total", "Query parses analysed from scratch.", nil, func() int64 {
		_, m := db.PlanCacheStats()
		return int64(m)
	})
	reg.CounterFunc("beas_result_cache_hits_total", "Queries served from the semantic result cache.", nil, func() int64 {
		return int64(db.ResultCacheStats().Hits)
	})
	reg.CounterFunc("beas_result_cache_misses_total", "Result-cache lookups that missed (or found a stale entry).", nil, func() int64 {
		return int64(db.ResultCacheStats().Misses)
	})
	reg.CounterFunc("beas_result_cache_stores_total", "Materialized answers admitted into the result cache.", nil, func() int64 {
		return int64(db.ResultCacheStats().Stores)
	})
	reg.CounterFunc("beas_result_cache_patches_total", "Cached answers patched in place under mutations.", nil, func() int64 {
		return int64(db.ResultCacheStats().Patches)
	})
	reg.CounterFunc("beas_result_cache_invalidations_total", "Cached answers invalidated by relevant mutations or DDL.", nil, func() int64 {
		return int64(db.ResultCacheStats().Invalidations)
	})
	reg.CounterFunc("beas_result_cache_evictions_total", "Cached answers evicted by the byte budget (LRU).", nil, func() int64 {
		return int64(db.ResultCacheStats().Evictions)
	})
	reg.GaugeFunc("beas_result_cache_entries", "Live entries in the result tier.", nil, func() float64 {
		return float64(db.ResultCacheStats().Entries)
	})
	reg.GaugeFunc("beas_result_cache_bytes", "Approximate bytes held by the result tier.", nil, func() float64 {
		return float64(db.ResultCacheStats().Bytes)
	})
	reg.GaugeFunc("beas_plan_cache_bytes", "Approximate bytes held by the template tier.", nil, func() float64 {
		return float64(db.ResultCacheStats().TemplateBytes)
	})
	reg.GaugeFunc("beas_wal_size_bytes", "On-disk size of all live WAL segments.", nil, func() float64 {
		return float64(db.Durability().WALBytes)
	})
	reg.GaugeFunc("beas_wal_last_lsn", "Sequence number of the most recent WAL record.", nil, func() float64 {
		return float64(db.Durability().LastLSN)
	})
	reg.GaugeFunc("beas_digest_entries", "Fingerprints retained by the workload digest set.", nil, func() float64 {
		return float64(db.Digests().Len())
	})
	reg.CounterFunc("beas_digest_observations_total", "Finished executions folded into the workload digests.", nil, func() int64 {
		return int64(db.Digests().Observations())
	})
	reg.CounterFunc("beas_digest_evictions_total", "Digest fingerprints evicted by the top-K retention.", nil, func() int64 {
		return int64(db.Digests().Evictions())
	})
	reg.GaugeFunc("beas_digest_drift_flagged", "Fingerprints whose actual fetch volume drifted past the estimate threshold.", nil, func() float64 {
		return float64(db.Digests().DriftCount())
	})
	reg.GaugeFunc("beas_digest_drift_worst_ratio", "Largest est-vs-actual drift severity over retained fingerprints (1 = honest, 0 = no estimates).", nil, func() float64 {
		return db.Digests().WorstDriftRatio()
	})
	appends := reg.Counter("beas_wal_appends_total", "WAL records appended.", nil)
	bytes := reg.Counter("beas_wal_append_bytes_total", "Framed bytes appended to the WAL.", nil)
	fsync := reg.Histogram("beas_wal_fsync_seconds", "Per-record WAL fsync latency in seconds.", obs.LatencyBuckets, nil)
	db.mu.RLock()
	w := db.wal
	db.mu.RUnlock()
	if w != nil {
		w.SetObserver(func(n int, syncDur time.Duration) {
			appends.Inc()
			bytes.Add(int64(n))
			if syncDur > 0 {
				fsync.Observe(syncDur.Seconds())
			}
		})
	}
}
