// CDR analytics: the paper's Example 2 end to end on the TLC telecom
// benchmark — bounded plan, deduced bound, execution statistics and the
// comparison against the three emulated conventional engines.
package main

import (
	"fmt"
	"log"

	beas "github.com/bounded-eval/beas"
)

func main() {
	fmt.Println("generating the TLC telecom benchmark (scale 3)...")
	db := beas.MustNewTLCDB(3)
	fmt.Printf("%d rows across 12 relations; access schema: %d constraints\n\n",
		db.TotalRows(), len(db.Constraints()))

	// Q1 is the paper's Example 2: regions with numbers called on date d0
	// by businesses of type t0 in region r0 that hold package c0 in 2016.
	var q beas.TLCQuery
	for _, bq := range beas.TLCQueries() {
		if bq.Name == "Q1" {
			q = bq
		}
	}
	fmt.Println("Q1:", q.Description)
	fmt.Println(q.SQL)
	fmt.Println()

	// The BE Checker decides coverage and deduces the bound before
	// executing anything (paper: "quantified data access").
	explain, err := db.Explain(q.SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(explain)
	fmt.Println()

	res, err := db.Query(q.SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer: %d rows in %s; %d tuples fetched via %d constraints\n",
		len(res.Rows), res.Stats.Duration, res.Stats.TuplesFetched, res.Stats.ConstraintsUsed)
	for _, s := range res.Stats.FetchSteps {
		fmt.Printf("  fetch %-10s keys=%-5d tuples=%-6d rows=%-6d %s\n",
			s.Atom, s.DistinctKey, s.Fetched, s.RowsOut, s.Duration)
	}
	fmt.Println()

	for _, base := range []beas.Baseline{beas.BaselinePostgres, beas.BaselineMySQL, beas.BaselineMariaDB} {
		conv, err := db.QueryBaseline(q.SQL, base)
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(conv.Stats.Duration) / float64(res.Stats.Duration)
		fmt.Printf("%-12s scanned %7d rows in %10s  (BEAS is %.0fx faster)\n",
			base, conv.Stats.TuplesScanned, conv.Stats.Duration, speedup)
	}
}
