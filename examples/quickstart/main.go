// Quickstart: create a schema, load data, register an access constraint,
// and watch BEAS answer a query by touching a bounded number of tuples.
package main

import (
	"fmt"
	"log"

	beas "github.com/bounded-eval/beas"
)

func main() {
	db := beas.NewDB()

	// A single relation: who called whom, when, and where.
	db.MustCreateTable("call",
		"pnum INT", "recnum INT", "date INT", "region STRING")

	// Load a few thousand rows; the planted rows for number 42 on one day
	// are the only ones a bounded plan will ever touch.
	for i := 0; i < 20000; i++ {
		db.MustInsert("call", 1000+i%500, 2000+i%700, 20240101+i%30, "r"+fmt.Sprint(i%10))
	}
	db.MustInsert("call", 42, 7001, 20240115, "east")
	db.MustInsert("call", 42, 7002, 20240115, "west")

	// The access constraint ψ: every number calls at most 500 distinct
	// (recnum, region) pairs per day, and an index retrieves them.
	db.MustRegisterConstraint("call({pnum, date} -> {recnum, region}, 500)")

	sql := `SELECT recnum, region FROM call WHERE pnum = 42 AND date = 20240115`

	// 1. Decide bounded evaluability and the bound M without executing.
	info, err := db.Check(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("covered: %v — the plan fetches at most %d tuples, no matter how big the table grows\n",
		info.Covered, info.Bound)

	// 2. Execute the bounded plan.
	res, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
	fmt.Printf("mode=%s, tuples fetched=%d (table has %d rows)\n",
		res.Stats.Mode, res.Stats.TuplesFetched, db.TotalRows())

	// 3. Compare with a conventional engine that must scan the table.
	conv, err := db.QueryBaseline(sql, beas.BaselinePostgres)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional engine scanned %d rows for the same answer\n",
		conv.Stats.TuplesScanned)
}
