// Resource-bounded approximation: when the fetch budget is smaller than
// the deduced bound M, BEAS returns a subset of the exact answer with a
// deterministic accuracy lower bound.
package main

import (
	"fmt"
	"log"

	beas "github.com/bounded-eval/beas"
)

func main() {
	fmt.Println("generating the TLC benchmark (scale 3)...")
	db := beas.MustNewTLCDB(3)

	var sql string
	for _, q := range beas.TLCQueries() {
		if q.Name == "Q1" {
			sql = q.SQL
		}
	}

	exact, err := db.QueryBounded(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact answer: %d rows, %d tuples fetched\n\n",
		len(exact.Rows), exact.Stats.TuplesFetched)

	fmt.Printf("%-16s %-14s %-12s %s\n", "budget (tuples)", "rows returned", "coverage >=", "exact?")
	for _, budget := range []int64{8, 32, 64, 96, 128, 192, 256, 1024} {
		res, coverage, err := db.QueryApprox(sql, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16d %-14d %-12.3f %v\n", budget, len(res.Rows), coverage, coverage >= 1)
	}
	fmt.Println("\nanswers are always subsets of the exact answer; coverage is a")
	fmt.Println("deterministic lower bound on the fraction of relevant data examined.")
}
