// Access schema discovery: mine access constraints from a dataset and a
// historical query load, under a storage budget — the Discovery module of
// BEAS's AS Catalog.
package main

import (
	"fmt"
	"log"

	beas "github.com/bounded-eval/beas"
)

func main() {
	fmt.Println("generating the TLC benchmark (scale 1)...")
	db := beas.MustNewTLCDB(1)

	// Throw away the reference access schema: discovery starts from the
	// data and the workload only.
	for _, c := range db.Constraints() {
		if err := db.DropConstraint(c); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("constraints registered: %d (dropped the reference schema)\n\n", len(db.Constraints()))

	// The historical query load: the 10 coverable built-in queries.
	var workload []string
	for _, q := range beas.TLCQueries()[:10] {
		workload = append(workload, q.SQL)
	}

	// Unlimited budget first, then a tight one.
	for _, budget := range []int64{0, 6000} {
		label := "unlimited storage"
		if budget > 0 {
			label = fmt.Sprintf("budget: %d index entries", budget)
		}
		fmt.Println("discovering with", label)
		specs, report, err := db.Discover(beas.DiscoverOptions{
			Workload: workload,
			Budget:   budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)
		fmt.Println()
		_ = specs
	}

	// Register the discovered schema and verify it actually covers the
	// workload.
	specs, _, err := db.Discover(beas.DiscoverOptions{Workload: workload, Register: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d discovered constraints; re-checking the workload:\n", len(specs))
	covered := 0
	for i, sql := range workload {
		info, err := db.Check(sql)
		if err != nil {
			log.Fatal(err)
		}
		if info.Covered {
			covered++
		}
		fmt.Printf("  Q%-3d covered=%v bound=%d\n", i+1, info.Covered, info.Bound)
	}
	fmt.Printf("%d/%d workload queries covered by the discovered schema\n", covered, len(workload))
}
