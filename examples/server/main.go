// Example server demonstrates the BEAS query service: it starts an
// in-process beasd-style server with bound-based admission control and
// drives it as an HTTP client — a covered query streaming within
// budget, an over-budget query downgraded to approximation with a
// deterministic accuracy bound, a rejection with the deduced bound in
// the error, and the monitoring endpoint.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/server"
)

func main() {
	// A tiny telco: calls keyed by (pnum, date) with at most 50 records
	// per key, and a customer table with no constraint at all.
	db := beas.NewDB()
	db.MustCreateTable("call", "pnum INT", "recnum INT", "date INT", "region STRING")
	for p := 1; p <= 40; p++ {
		for r := 0; r < 50; r++ {
			db.MustInsert("call", p, p*1000+r, 20260301, "EMEA")
		}
	}
	db.MustRegisterConstraint("call({pnum, date} -> {recnum, region}, 50)")

	srv := server.New(db, server.Config{
		BoundBudget:  500,                 // admit queries bounded by ≤ 500 tuples
		OverBudget:   server.PolicyApprox, // downgrade the rest to approximation
		ApproxBudget: 200,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("server listening on", ts.URL)

	// 1. A covered point query: bound 50 ≤ 500, admitted and streamed.
	query(ts.URL, "SELECT recnum FROM call WHERE pnum = 7 AND date = 20260301")

	// 2. An IN list over 12 keys: bound 600 > 500, downgraded — the
	// trailer reports the fraction of the relevant data actually read.
	in := make([]string, 12)
	for i := range in {
		in[i] = fmt.Sprint(i + 1)
	}
	query(ts.URL, fmt.Sprintf(
		"SELECT recnum FROM call WHERE pnum IN (%s) AND date = 20260301", strings.Join(in, ", ")))

	// 3. Not covered at all: rejected before execution with the reason.
	query(ts.URL, "SELECT pnum FROM call WHERE region = 'EMEA'")

	// 4. The monitoring endpoint.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/stats: queries=%d admitted=%d downgraded=%d rejected(uncovered)=%d fetched=%d cacheHits=%d\n",
		stats.Queries, stats.Admitted, stats.Downgraded, stats.RejectedUncovered,
		stats.TuplesFetched, stats.PlanCacheHits)
}

// query posts sql to /query and prints the NDJSON stream.
func query(base, sql string) {
	fmt.Printf("\n> %s\n", sql)
	body, _ := json.Marshal(map[string]string{"sql": sql})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er struct {
			Error string `json:"error"`
			Bound uint64 `json:"bound"`
		}
		json.NewDecoder(resp.Body).Decode(&er)
		fmt.Printf("  HTTP %d: %s\n", resp.StatusCode, er.Error)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	rows := 0
	for sc.Scan() {
		var line struct {
			Columns   []string `json:"columns"`
			Admission string   `json:"admission"`
			Bound     uint64   `json:"bound"`
			Rows      [][]any  `json:"rows"`
			Stats     *struct {
				Mode          string  `json:"mode"`
				TuplesFetched int64   `json:"tuplesFetched"`
				Coverage      float64 `json:"coverage"`
			} `json:"stats"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			log.Fatal(err)
		}
		switch {
		case line.Columns != nil:
			fmt.Printf("  %s (deduced bound %d), columns %v\n", line.Admission, line.Bound, line.Columns)
		case line.Error != "":
			fmt.Println("  stream error:", line.Error)
		case line.Stats != nil:
			fmt.Printf("  %d rows, mode=%s, fetched=%d", rows, line.Stats.Mode, line.Stats.TuplesFetched)
			if line.Stats.Coverage > 0 && line.Stats.Coverage < 1 {
				fmt.Printf(", accuracy ≥ %.0f%%", 100*line.Stats.Coverage)
			}
			fmt.Println()
		default:
			rows += len(line.Rows)
		}
	}
}
