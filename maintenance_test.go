package beas

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRetightenTightensBounds(t *testing.T) {
	db := smallDB(t) // ψ: call({pnum, date} -> {recnum, region}, 100)
	sql := "SELECT recnum FROM call WHERE pnum = 1 AND date = 20240101"
	before, err := db.Check(sql)
	if err != nil {
		t.Fatal(err)
	}
	if before.Bound != 100 {
		t.Fatalf("initial bound = %d", before.Bound)
	}
	specs, err := db.Retighten()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || !strings.Contains(specs[0], ", 2)") {
		t.Fatalf("Retighten specs = %v, want N tightened to 2", specs)
	}
	after, err := db.Check(sql)
	if err != nil {
		t.Fatal(err)
	}
	if after.Bound != 2 {
		t.Errorf("bound after retighten = %d, want 2", after.Bound)
	}
}

func TestRetightenRecoversInvalidIndex(t *testing.T) {
	db := smallDB(t)
	// A tight constraint that inserts will violate.
	if err := db.RegisterConstraint("call({pnum} -> {recnum}, 2)"); err != nil {
		t.Fatal(err)
	}
	db.MustInsert("call", 1, 500, 20240103, "east")
	db.MustInsert("call", 1, 501, 20240104, "east")
	if ok, _ := db.Conforms(); ok {
		t.Fatal("expected a violation")
	}
	// The invalidated index must not serve bounded plans.
	sql := "SELECT recnum FROM call WHERE pnum = 1"
	if info, _ := db.Check(sql); info.Covered {
		t.Fatal("invalid index used for coverage")
	}
	// Periodic adjustment widens N to reality and revalidates.
	if _, err := db.Retighten(); err != nil {
		t.Fatal(err)
	}
	if ok, viols := db.Conforms(); !ok {
		t.Fatalf("still violating after Retighten: %v", viols)
	}
	info, err := db.Check(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Covered {
		t.Errorf("query should be covered again after Retighten: %s", info.Reason)
	}
	res, err := db.QueryBounded(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d, want 4", len(res.Rows))
	}
}

func TestAccessSchemaFileRoundTrip(t *testing.T) {
	db := smallDB(t)
	path := filepath.Join(t.TempDir(), "schema.txt")
	if err := db.SaveAccessSchema(path); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	db2.MustCreateTable("call", "pnum INT", "recnum INT", "date INT", "region STRING")
	db2.MustInsert("call", 1, 100, 20240101, "east")
	if err := db2.LoadAccessSchema(path); err != nil {
		t.Fatal(err)
	}
	if len(db2.Constraints()) != 1 {
		t.Fatalf("constraints after load = %v", db2.Constraints())
	}
	info, err := db2.Check("SELECT recnum FROM call WHERE pnum = 1 AND date = 20240101")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Covered {
		t.Errorf("loaded schema should cover the lookup: %s", info.Reason)
	}
	if err := db2.LoadAccessSchema(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestPlanCacheInvalidation(t *testing.T) {
	db := smallDB(t)
	sql := "SELECT recnum FROM call WHERE pnum = 1 AND date = 20240101"
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	// Cached parse must be reused (pointer identity).
	p1, err := db.parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db.parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("plan cache miss on identical SQL")
	}
	// Dropping a constraint invalidates the cache.
	if err := db.DropConstraint(db.Constraints()[0]); err != nil {
		t.Fatal(err)
	}
	p3, err := db.parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("plan cache not invalidated by catalogue change")
	}
}

// TestConcurrentQueriesAndInserts exercises the engine under parallel
// readers and writers; correctness of the interleaving is loose (row
// counts move), but there must be no errors and every bounded answer must
// be internally consistent.
func TestConcurrentQueriesAndInserts(t *testing.T) {
	db := smallDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := db.Insert("call", 1, 1000+w*100+i, 20240101, "north"); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := db.Query("SELECT recnum FROM call WHERE pnum = 1 AND date = 20240101")
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) < 2 {
					errs <- fmt.Errorf("lost rows: %d", len(res.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After the dust settles, bounded and conventional agree again.
	res, err := db.Query("SELECT recnum FROM call WHERE pnum = 1 AND date = 20240101")
	if err != nil {
		t.Fatal(err)
	}
	conv, err := db.QueryBaseline("SELECT recnum FROM call WHERE pnum = 1 AND date = 20240101", BaselinePostgres)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(conv.Rows) || len(res.Rows) != 202 {
		t.Errorf("rows: bounded %d, conventional %d, want 202", len(res.Rows), len(conv.Rows))
	}
}
