package beas

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/tlc"
	"github.com/bounded-eval/beas/internal/value"
)

// The semantic result cache must be invisible in every answer: with the
// cache on, a query returns bit-identical rows, row order and
// data-derived statistics to an uncached execution, under any
// interleaving of inserts, deletes and catalog changes. This file pits a
// cache-enabled database against an uncached twin built from the same
// seed and mutated in lockstep.

// mustEqualCached compares one statement's results across the cached
// database and its uncached twin: identical columns, identical rows in
// identical order, identical data-derived statistics. Timing, plan text,
// estimates and cache metadata (Stats.CacheHit) are excluded — they are
// the only fields a cache hit is allowed to change.
func mustEqualCached(t *testing.T, sql string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Columns, want.Columns) {
		t.Fatalf("%s:\ncolumns: cached %v, uncached %v", sql, got.Columns, want.Columns)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s:\ncached %d rows, uncached %d rows", sql, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if value.Key(got.Rows[i]) != value.Key(want.Rows[i]) {
			t.Fatalf("%s:\nrow %d differs (order-sensitive): cached %v, uncached %v",
				sql, i, got.Rows[i], want.Rows[i])
		}
	}
	gs, ws := got.Stats, want.Stats
	if gs.Mode != ws.Mode || gs.Covered != ws.Covered || gs.Bound != ws.Bound ||
		gs.ConstraintsUsed != ws.ConstraintsUsed ||
		gs.TuplesFetched != ws.TuplesFetched || gs.TuplesScanned != ws.TuplesScanned {
		t.Fatalf("%s:\nstats diverge:\ncached   mode=%v covered=%v bound=%d constraints=%d fetched=%d scanned=%d\nuncached mode=%v covered=%v bound=%d constraints=%d fetched=%d scanned=%d",
			sql,
			gs.Mode, gs.Covered, gs.Bound, gs.ConstraintsUsed, gs.TuplesFetched, gs.TuplesScanned,
			ws.Mode, ws.Covered, ws.Bound, ws.ConstraintsUsed, ws.TuplesFetched, ws.TuplesScanned)
	}
	if len(gs.FetchSteps) != len(ws.FetchSteps) {
		t.Fatalf("%s:\ncached %d fetch steps, uncached %d", sql, len(gs.FetchSteps), len(ws.FetchSteps))
	}
	for i := range gs.FetchSteps {
		a, b := gs.FetchSteps[i], ws.FetchSteps[i]
		if a.Constraint != b.Constraint || a.DistinctKey != b.DistinctKey ||
			a.Fetched != b.Fetched || a.RowsOut != b.RowsOut ||
			a.KeyBound != b.KeyBound || a.OutBound != b.OutBound {
			t.Fatalf("%s:\nfetch step %d diverges:\ncached   %+v\nuncached %+v", sql, i, a, b)
		}
	}
}

// randomMutation draws one mutation from the shared stream. The returned
// closure is applied to both databases so they stay identical; the
// description names the operation in failures.
func randomMutation(rng *rand.Rand) (string, func(*DB) error) {
	switch rng.Intn(10) {
	case 0, 1, 2, 3:
		vals := []any{rng.Intn(8), rng.Intn(6), fmt.Sprintf("c%d", rng.Intn(4)), rng.Intn(10),
			float64(rng.Intn(33)-16) * 0.5, int64(1) << 61, rng.Intn(2) == 0}
		return fmt.Sprintf("INSERT r %v", vals),
			func(db *DB) error { return db.Insert("r", vals...) }
	case 4:
		b, e := rng.Intn(6), rng.Intn(5)
		return fmt.Sprintf("INSERT s (%d, %d)", b, e),
			func(db *DB) error { return db.Insert("s", b, e) }
	case 5:
		e, f := rng.Intn(5), fmt.Sprintf("f%d", rng.Intn(3))
		return fmt.Sprintf("INSERT t (%d, %q)", e, f),
			func(db *DB) error { return db.Insert("t", e, f) }
	case 6, 7:
		a := rng.Intn(8)
		return fmt.Sprintf("DELETE r WHERE a=%d", a),
			func(db *DB) error { _, err := db.Delete("r", map[string]any{"a": a}); return err }
	case 8:
		b := rng.Intn(6)
		return fmt.Sprintf("DELETE s WHERE b=%d", b),
			func(db *DB) error { _, err := db.Delete("s", map[string]any{"b": b}); return err }
	default:
		return "RETIGHTEN", func(db *DB) error { _, err := db.Retighten(); return err }
	}
}

// TestResultCacheEquivalenceRandomized interleaves randomized mutations
// with repeated randomized queries. Every statement runs once on the
// uncached twin and twice on the cached database — the second pass
// serves stored entries — and each round re-runs the round's statements
// after the mutations, so patched and invalidated entries are compared
// against fresh execution too. Configurations sweep parallel execution
// and the cost-based optimizer (whose entries use coarse invalidation).
func TestResultCacheEquivalenceRandomized(t *testing.T) {
	for d := 0; d < 4; d++ {
		seed := int64(9200 + 17*d)
		cached := randomDB(t, rand.New(rand.NewSource(seed)))
		twin := randomDB(t, rand.New(rand.NewSource(seed)))
		cached.SetResultCache(true)
		if d%2 == 1 {
			cached.SetParallelism(4)
			twin.SetParallelism(4)
		}
		if d == 3 {
			cached.SetOptimizer(true)
			twin.SetOptimizer(true)
		}
		rng := rand.New(rand.NewSource(seed + 1))
		for round := 0; round < 6; round++ {
			sqls := make([]string, 8)
			for i := range sqls {
				sqls[i] = randomSQL(rng)
			}
			check := func(when string) {
				for _, sql := range sqls {
					want, err := twin.Query(sql)
					if err != nil {
						t.Fatalf("db %d round %d %s: uncached %s: %v", d, round, when, sql, err)
					}
					for pass := 0; pass < 2; pass++ {
						got, err := cached.Query(sql)
						if err != nil {
							t.Fatalf("db %d round %d %s: cached %s: %v", d, round, when, sql, err)
						}
						mustEqualCached(t, fmt.Sprintf("db %d round %d %s: %s", d, round, when, sql), got, want)
					}
				}
			}
			check("pre-mutation")
			for m := 0; m < 4; m++ {
				desc, apply := randomMutation(rng)
				if err := apply(cached); err != nil {
					t.Fatalf("db %d round %d: %s on cached: %v", d, round, desc, err)
				}
				if err := apply(twin); err != nil {
					t.Fatalf("db %d round %d: %s on twin: %v", d, round, desc, err)
				}
			}
			check("post-mutation")
		}
		st := cached.ResultCacheStats()
		if st.Hits == 0 {
			t.Fatalf("db %d: the cached database never served a hit — the hit path went untested", d)
		}
		t.Logf("db %d: hits=%d misses=%d stores=%d patches=%d invalidations=%d",
			d, st.Hits, st.Misses, st.Stores, st.Patches, st.Invalidations)
	}
}

// TestResultCacheEquivalenceTLC runs the full TLC workload with the
// cache on against an uncached twin, interleaving inserts, deletes and
// retightening between sweeps.
func TestResultCacheEquivalenceTLC(t *testing.T) {
	cached := MustNewTLCDB(1)
	twin := MustNewTLCDB(1)
	cached.SetResultCache(true)
	queries := TLCQueries()
	var callRel *schema.Relation
	for _, r := range tlc.Relations() {
		if r.Name == "call" {
			callRel = r
		}
	}
	// tlcRow synthesises one schema-conformant call record; seed keys its
	// pnum so a later round can delete exactly this row on both sides.
	tlcRow := func(seed int) []any {
		row := make([]any, callRel.Arity())
		for i, a := range callRel.Attrs {
			switch a.Kind {
			case value.String:
				row[i] = fmt.Sprintf("m%d", seed)
			case value.Float:
				row[i] = float64(seed) + 0.5
			default:
				row[i] = seed*31 + i
			}
		}
		return row
	}
	mutate := func(round int) {
		row := tlcRow(7000 + round)
		for _, db := range []*DB{cached, twin} {
			db.MustInsert("call", row...)
			if round > 0 {
				if _, err := db.Delete("call", map[string]any{"pnum": 31 * (7000 + round - 1)}); err != nil {
					t.Fatal(err)
				}
			}
			if round == 2 {
				if _, err := db.Retighten(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			want, err := twin.Query(q.SQL)
			if err != nil {
				t.Fatalf("round %d: uncached %s: %v", round, q.Name, err)
			}
			for pass := 0; pass < 2; pass++ {
				got, err := cached.Query(q.SQL)
				if err != nil {
					t.Fatalf("round %d: cached %s: %v", round, q.Name, err)
				}
				mustEqualCached(t, fmt.Sprintf("round %d: %s", round, q.Name), got, want)
			}
		}
		mutate(round)
	}
	st := cached.ResultCacheStats()
	if st.Hits == 0 {
		t.Fatal("TLC sweep produced no cache hits")
	}
	t.Logf("TLC: hits=%d misses=%d stores=%d patches=%d invalidations=%d",
		st.Hits, st.Misses, st.Stores, st.Patches, st.Invalidations)
}

// TestResultCacheEquivalenceVariants checks the canonicalizer end to
// end: syntactic variants of one statement — reordered conjuncts, case
// changes, whitespace, reordered IN lists — must share a single result
// entry and serve identical answers.
func TestResultCacheEquivalenceVariants(t *testing.T) {
	seed := int64(4242)
	cached := randomDB(t, rand.New(rand.NewSource(seed)))
	twin := randomDB(t, rand.New(rand.NewSource(seed)))
	cached.SetResultCache(true)

	groups := [][]string{
		{
			"SELECT r.c, r.d FROM r WHERE r.a = 3 AND r.d = 5",
			"select r.c, r.d from r where r.d = 5 and r.a = 3",
			"SELECT  r.c,  r.d  FROM r  WHERE r.d = 5 AND r.a = 3",
		},
		{
			"SELECT r.a, s.e FROM r, s WHERE r.a IN (1, 4) AND r.b = s.b",
			"SELECT r.a, s.e FROM r, s WHERE r.b = s.b AND r.a IN (1, 4)",
		},
		{
			"SELECT COUNT(*), MIN(r.d) FROM r WHERE r.b = 2",
			"select count(*), min(r.d) from r where r.b = 2",
		},
	}
	for gi, group := range groups {
		base := cached.ResultCacheStats()
		want, err := twin.Query(group[0])
		if err != nil {
			t.Fatalf("group %d: uncached: %v", gi, err)
		}
		for vi, sql := range group {
			got, err := cached.Query(sql)
			if err != nil {
				t.Fatalf("group %d variant %d: %v", gi, vi, err)
			}
			mustEqualCached(t, fmt.Sprintf("group %d variant %d: %s", gi, vi, sql), got, want)
			if vi > 0 && !got.Stats.CacheHit {
				t.Fatalf("group %d variant %d did not hit the entry stored by variant 0: %s", gi, vi, sql)
			}
		}
		st := cached.ResultCacheStats()
		if n := st.Stores - base.Stores; n != 1 {
			t.Fatalf("group %d: %d entries stored for %d syntactic variants; the canonicalizer must collapse them to one",
				gi, n, len(group))
		}
		if hits := st.Hits - base.Hits; hits != uint64(len(group)-1) {
			t.Fatalf("group %d: %d hits for %d variants after the first", gi, hits, len(group)-1)
		}
	}

	// A permuted IN list is NOT an equivalent variant: serial execution
	// probes candidate constants in textual order, so the two statements
	// return the same bag in different row orders. Each must keep its own
	// entry and serve its own order.
	perm := []string{
		"SELECT r.a, r.c FROM r WHERE r.a IN (1, 4)",
		"SELECT r.a, r.c FROM r WHERE r.a IN (4, 1)",
	}
	for _, sql := range perm {
		want, err := twin.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := cached.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualCached(t, sql, got, want)
			if pass == 1 && !got.Stats.CacheHit {
				t.Fatalf("repeat of %q missed its own entry", sql)
			}
		}
	}
}

// TestResultCacheEquivalenceStream covers the cursor path both ways: a
// fully drained cold cursor must store the answer (an abandoned one
// must not), and a QueryIter over the stored entry must stream the
// identical rows in the identical order and surface the restored
// statistics at Close.
func TestResultCacheEquivalenceStream(t *testing.T) {
	seed := int64(515)
	cached := randomDB(t, rand.New(rand.NewSource(seed)))
	twin := randomDB(t, rand.New(rand.NewSource(seed)))
	cached.SetResultCache(true)

	sql := "SELECT r.a, r.b, r.c FROM r WHERE r.a = 2"
	want, err := twin.Query(sql)
	if err != nil {
		t.Fatal(err)
	}

	// An early-closed cursor has a partial answer: no store.
	early, err := cached.QueryIter(sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := early.Next(); err != nil {
		t.Fatal(err)
	}
	if err := early.Close(); err != nil {
		t.Fatal(err)
	}
	if st := cached.ResultCacheStats(); st.Stores != 0 {
		t.Fatalf("abandoned cursor stored a partial answer: %+v", st)
	}

	// A drained cursor stores the bounded answer exactly like Query.
	cold, err := cached.QueryIter(sql)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := cold.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	if cold.Stats().CacheHit {
		t.Fatal("cold cursor reported a cache hit")
	}
	if st := cached.ResultCacheStats(); st.Stores != 1 {
		t.Fatalf("drained cursor did not store: %+v", st)
	}

	it, err := cached.QueryIter(sql)
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	st := it.Stats()
	if !st.CacheHit {
		t.Fatal("cursor over a stored entry did not serve from the cache")
	}
	if len(rows) != len(want.Rows) {
		t.Fatalf("cursor streamed %d rows, uncached query returned %d", len(rows), len(want.Rows))
	}
	for i := range rows {
		if value.Key(rows[i]) != value.Key(want.Rows[i]) {
			t.Fatalf("cursor row %d: %v != %v", i, rows[i], want.Rows[i])
		}
	}
	if st.TuplesFetched != want.Stats.TuplesFetched || len(st.FetchSteps) != len(want.Stats.FetchSteps) {
		t.Fatalf("cursor stats: fetched=%d steps=%d, uncached fetched=%d steps=%d",
			st.TuplesFetched, len(st.FetchSteps), want.Stats.TuplesFetched, len(want.Stats.FetchSteps))
	}
}

// TestPlanCacheBoundedGrowth floods the template tier with distinct
// statement texts and requires its byte accounting to hold the
// configured budget — the regression the unbounded sync.Map plan cache
// could not pass.
func TestPlanCacheBoundedGrowth(t *testing.T) {
	db := NewDB()
	db.MustCreateTable("u", "a INT", "b INT")
	if _, err := db.RegisterConstraintAuto("u", []string{"a"}, []string{"b"}, 1); err != nil {
		t.Fatal(err)
	}
	db.MustInsert("u", 1, 10)
	const budget = 1 << 20
	db.SetResultCacheLimits(budget, 0)
	const distinct = 100000
	for i := 0; i < distinct; i++ {
		sql := fmt.Sprintf("SELECT u.b FROM u WHERE u.a = %d", i)
		if _, err := db.Check(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	st := db.ResultCacheStats()
	if st.TemplateBytes > budget {
		t.Fatalf("template tier holds %d bytes, budget is %d", st.TemplateBytes, budget)
	}
	if st.TemplateEntries >= distinct/2 {
		t.Fatalf("template tier kept %d of %d distinct texts; eviction is not engaging", st.TemplateEntries, distinct)
	}
	if st.TemplateEntries == 0 {
		t.Fatal("template tier is empty after the flood; admission is broken")
	}
	// The most recent statement must still be cached and usable.
	sql := fmt.Sprintf("SELECT u.b FROM u WHERE u.a = %d", distinct-1)
	base := st.TemplateHits
	if _, err := db.Check(sql); err != nil {
		t.Fatal(err)
	}
	if got := db.ResultCacheStats().TemplateHits; got != base+1 {
		t.Fatalf("re-checking the most recent statement missed the template tier (hits %d -> %d)", base, got)
	}
}
