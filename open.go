package beas

import (
	"fmt"
	"time"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/qcache"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
	"github.com/bounded-eval/beas/internal/wal"
)

// Options configures a durable database opened with Open.
type Options struct {
	// NoSync skips the per-record fsync on the write-ahead log. Mutation
	// throughput rises by orders of magnitude, but an OS crash or power
	// loss may lose the most recently acknowledged writes (a process
	// crash alone does not: records are handed to the OS on every
	// append). Recovery still restores a consistent prefix.
	NoSync bool
	// SnapshotEvery takes an automatic snapshot (and truncates the log)
	// after this many WAL records. 0 means the default (100000);
	// negative disables automatic snapshots — the log then only shrinks
	// on explicit Snapshot calls or Close.
	SnapshotEvery int
	// Parallelism is the intra-query parallelism (see DB.SetParallelism):
	// n > 1 lets a single bounded plan exploit n cores. 0 or 1 keeps the
	// serial executor. Results are bit-identical across settings.
	Parallelism int
	// Optimizer enables the cost-based plan optimizer (see
	// DB.SetOptimizer): covered queries then pick among equivalent
	// coverage derivations by statistics-estimated cost instead of
	// worst-case bounds. Results are identical either way; the reported
	// worst-case admission bound is unchanged.
	Optimizer bool
	// BatchSize is the columnar batch row capacity for vectorized
	// execution (see DB.SetBatchSize). 0 keeps the default (256).
	BatchSize int
	// Tracer installs a query-lifecycle tracer (see DB.SetTracer). nil
	// keeps tracing off.
	Tracer *Tracer
	// Metrics wires the database's internal instrumentation — plan
	// cache, WAL appends and fsync latency, durability gauges — into a
	// metrics registry (see DB.SetMetrics). nil skips the wiring.
	Metrics *MetricsRegistry
	// ResultCache enables the semantic result cache (see
	// DB.SetResultCache): fresh materialized answers of covered queries
	// are served without re-execution and kept fresh incrementally under
	// mutations. Off by default; answers are bit-identical either way.
	ResultCache bool
	// ResultCacheMaxBytes bounds the result tier's memory (approximate
	// byte accounting, LRU eviction). 0 keeps the default (64 MiB).
	ResultCacheMaxBytes int64
	// PlanCacheMaxBytes bounds the parsed-template tier's memory. The
	// template tier is always on — it replaces the former unbounded plan
	// cache. 0 keeps the default (16 MiB).
	PlanCacheMaxBytes int64
}

const defaultSnapshotEvery = 100_000

// RecoveryInfo describes what Open reconstructed from disk.
type RecoveryInfo struct {
	// SnapshotLSN is the log position of the snapshot recovery started
	// from (0 when the store was rebuilt from the log alone).
	SnapshotLSN uint64
	// ReplayedRecords is how many WAL records were replayed on top of
	// the snapshot.
	ReplayedRecords int
	// TruncatedBytes is the size of the torn final record dropped from
	// the log tail (0 on a clean open).
	TruncatedBytes int64
	// Duration is the wall time recovery took.
	Duration time.Duration
	// Conforms reports whether D |= A held after recovery — it is false
	// exactly when it was false before the crash (violations of strict
	// constraints are themselves replayed).
	Conforms bool
}

// DurabilityStats snapshots the storage engine's state for monitoring.
type DurabilityStats struct {
	// Durable is false for purely in-memory databases (NewDB); every
	// other field is then zero.
	Durable bool
	// Dir is the data directory.
	Dir string
	// WALBytes is the on-disk size of all live log segments.
	WALBytes int64
	// LastLSN is the sequence number of the most recent WAL record.
	LastLSN uint64
	// SnapshotLSN is the log position of the newest snapshot.
	SnapshotLSN uint64
	// RecordsSinceSnapshot is the length of the log tail a crash right
	// now would replay.
	RecordsSinceSnapshot int
	// LastSnapshot is when the newest snapshot was written (zero if
	// none exists yet).
	LastSnapshot time.Time
	// Snapshots counts snapshots taken since this handle opened.
	Snapshots uint64
	// Recovery describes what the last Open reconstructed.
	Recovery RecoveryInfo
}

// Open opens (creating if necessary) a durable database in dir.
//
// The directory holds an append-only write-ahead log (wal-*.log) of
// logical mutation records and periodic full snapshots (snap-*.snap).
// Open loads the newest valid snapshot, replays the log records past
// its position — rebuilding every access-constraint index through the
// same registration and incremental-maintenance paths as the original
// execution — verifies conformance, and returns a handle whose mutating
// methods append to the log before they are acknowledged. A torn final
// record (a crash mid-append) is detected by checksum and dropped;
// corruption anywhere else fails Open rather than silently losing
// acknowledged history.
//
// Pass nil opts for defaults (fsync on every record, snapshot every
// 100000 records).
func Open(dir string, opts *Options) (*DB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = defaultSnapshotEvery
	}
	start := time.Now()
	log, recv, err := wal.Open(dir, wal.Options{NoSync: o.NoSync})
	if err != nil {
		return nil, fmt.Errorf("beas: opening %s: %w", dir, err)
	}
	db := NewDB()
	// Replace the default cache before any statement can populate it:
	// replay below mutates tables directly (observers attach lazily at
	// the first Store, so replay events are never mis-seen either way).
	db.qc = qcache.New(o.PlanCacheMaxBytes, o.ResultCacheMaxBytes, o.ResultCache)
	if o.Parallelism > 1 {
		db.SetParallelism(o.Parallelism)
	}
	if o.Optimizer {
		db.SetOptimizer(true)
	}
	if o.BatchSize > 0 {
		db.SetBatchSize(o.BatchSize)
	}
	db.walDir = dir
	db.snapEvery = o.SnapshotEvery
	if recv.Snapshot != nil {
		if err := db.loadSnapshot(recv.Snapshot); err != nil {
			log.Close()
			return nil, fmt.Errorf("beas: loading snapshot of %s: %w", dir, err)
		}
		db.snapLSN = recv.Snapshot.LSN
		db.lastSnapTime = recv.SnapshotTime
	}
	for _, rec := range recv.Records {
		if err := db.applyRecord(rec); err != nil {
			log.Close()
			return nil, fmt.Errorf("beas: replaying %s record %d of %s: %w", rec.Type, rec.LSN, dir, err)
		}
	}
	// The log is attached only after replay, so replayed records are
	// never re-logged and the tail count below is exact.
	db.wal = log
	db.recsSinceSnap = int(log.LastLSN() - db.snapLSN)
	ok, _ := db.access.Conforms()
	db.recovered = RecoveryInfo{
		SnapshotLSN:     db.snapLSN,
		ReplayedRecords: len(recv.Records),
		TruncatedBytes:  recv.TruncatedTail,
		Duration:        time.Since(start),
		Conforms:        ok,
	}
	db.bumpCatalog()
	if o.Tracer != nil {
		db.SetTracer(o.Tracer)
	}
	if o.Metrics != nil {
		// After db.wal is attached, so the WAL observer lands on the live
		// log.
		db.SetMetrics(o.Metrics)
	}
	return db, nil
}

// Close takes a final snapshot if the database is durable and has
// unsnapshotted log records, then closes the log. Mutations after Close
// fail; reads keep working on the in-memory state.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		db.closed = true
		return nil
	}
	var firstErr error
	if db.recsSinceSnap > 0 {
		firstErr = db.snapshotLocked()
	}
	if err := db.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	db.wal = nil
	db.closed = true
	return firstErr
}

// Snapshot writes a full snapshot of the database (store plus access
// schema) and truncates the log: segments and older snapshots the new
// snapshot makes redundant are deleted. It is a no-op on an in-memory
// database.
func (db *DB) Snapshot() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	if db.wal == nil {
		return nil
	}
	return db.snapshotLocked()
}

// Durability reports the storage engine's current state.
func (db *DB) Durability() DurabilityStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.walDir == "" {
		return DurabilityStats{}
	}
	st := DurabilityStats{
		Durable:              true,
		Dir:                  db.walDir,
		SnapshotLSN:          db.snapLSN,
		RecordsSinceSnapshot: db.recsSinceSnap,
		LastSnapshot:         db.lastSnapTime,
		Snapshots:            db.snapCount,
		Recovery:             db.recovered,
	}
	if db.wal != nil {
		st.WALBytes = db.wal.Size()
		st.LastLSN = db.wal.LastLSN()
	}
	return st
}

var errClosed = fmt.Errorf("beas: database is closed")

// walAppendLocked logs one mutation record. Callers hold db.mu (write)
// and have already validated that applying the record cannot fail, so
// the log never carries a record replay would reject. On an in-memory
// database it is a no-op.
//
// An append error (disk full, I/O failure) is returned to the caller
// but cannot roll back an already-applied mutation; the handle should
// then be closed and reopened, which recovers the last durable state.
func (db *DB) walAppendLocked(rec *wal.Record) error {
	if db.closed {
		return errClosed
	}
	if db.wal == nil {
		return nil
	}
	if err := db.wal.Append(rec); err != nil {
		return err
	}
	db.recsSinceSnap++
	return nil
}

// maybeSnapshotLocked takes an automatic snapshot when the configured
// record cadence is due. Callers hold db.mu (write).
func (db *DB) maybeSnapshotLocked() error {
	if db.wal == nil || db.snapEvery <= 0 || db.recsSinceSnap < db.snapEvery {
		return nil
	}
	return db.snapshotLocked()
}

// snapshotLocked dumps the store and access schema as of the log's last
// record, writes the snapshot atomically and rotates + compacts the
// log. Callers hold db.mu (write), so no mutation can interleave with
// the dump.
func (db *DB) snapshotLocked() error {
	snap := &wal.Snapshot{LSN: db.wal.LastLSN()}
	for _, name := range db.store.Names() {
		t := db.store.MustTable(name)
		cols := make([]wal.Column, t.Rel.Arity())
		for i, a := range t.Rel.Attrs {
			cols[i] = wal.Column{Name: a.Name, Kind: a.Kind}
		}
		snap.Tables = append(snap.Tables, wal.TableDump{
			Name: t.Rel.Name,
			Cols: cols,
			Rows: t.Rows(),
		})
	}
	for _, c := range db.access.Constraints() {
		autoWiden := false
		if idx, ok := db.access.Index(c); ok {
			autoWiden = idx.AutoWiden
		}
		snap.Constraints = append(snap.Constraints, wal.ConstraintDump{
			Spec:      c.String(),
			AutoWiden: autoWiden,
		})
	}
	if err := wal.WriteSnapshot(db.walDir, snap); err != nil {
		return fmt.Errorf("beas: writing snapshot: %w", err)
	}
	if err := db.wal.Rotate(snap.LSN); err != nil {
		return fmt.Errorf("beas: rotating log: %w", err)
	}
	db.snapLSN = snap.LSN
	db.lastSnapTime = time.Now()
	db.recsSinceSnap = 0
	db.snapCount++
	return nil
}

// loadSnapshot restores tables, rows and constraint indices from a
// snapshot dump. Indices are rebuilt through access.Schema.Register —
// the same path as live registration — so their buckets, counts and
// widening policies come back exactly.
func (db *DB) loadSnapshot(s *wal.Snapshot) error {
	for _, td := range s.Tables {
		attrs := make([]schema.Attribute, len(td.Cols))
		for i, c := range td.Cols {
			attrs[i] = schema.Attribute{Name: c.Name, Kind: c.Kind}
		}
		rel, err := schema.NewRelation(td.Name, attrs...)
		if err != nil {
			return err
		}
		t, err := db.createTableLocked(rel)
		if err != nil {
			return err
		}
		if err := t.InsertBulk(td.Rows); err != nil {
			return err
		}
	}
	for _, cd := range s.Constraints {
		c, err := access.ParseConstraint(db.schema, cd.Spec)
		if err != nil {
			return err
		}
		if _, err := db.access.Register(c, cd.AutoWiden); err != nil {
			return fmt.Errorf("rebuilding index for %s: %w", cd.Spec, err)
		}
	}
	return nil
}

// applyRecord replays one WAL record against the in-memory state,
// without re-logging it. Replay runs the same code paths as the
// original mutations, in the original order, so incremental index
// maintenance reproduces the pre-crash index state exactly.
func (db *DB) applyRecord(rec *wal.Record) error {
	switch rec.Type {
	case wal.RecCreateTable:
		attrs := make([]schema.Attribute, len(rec.Cols))
		for i, c := range rec.Cols {
			attrs[i] = schema.Attribute{Name: c.Name, Kind: c.Kind}
		}
		rel, err := schema.NewRelation(rec.Table, attrs...)
		if err != nil {
			return err
		}
		_, err = db.createTableLocked(rel)
		return err
	case wal.RecInsert:
		t, ok := db.store.Table(rec.Table)
		if !ok {
			return fmt.Errorf("no table %q", rec.Table)
		}
		return t.Insert(rec.Row)
	case wal.RecDelete:
		t, ok := db.store.Table(rec.Table)
		if !ok {
			return fmt.Errorf("no table %q", rec.Table)
		}
		match, err := condsMatcher(t, rec.Where)
		if err != nil {
			return err
		}
		t.Delete(match)
		return nil
	case wal.RecRegisterConstraint:
		c, err := access.ParseConstraint(db.schema, rec.Spec)
		if err != nil {
			return err
		}
		_, err = db.access.Register(c, rec.AutoWiden)
		return err
	case wal.RecDropConstraint:
		c, err := access.ParseConstraint(db.schema, rec.Spec)
		if err != nil {
			return err
		}
		if !db.access.Unregister(c) {
			return fmt.Errorf("constraint %v is not registered", c)
		}
		return nil
	case wal.RecRetighten:
		db.access.Retighten()
		return nil
	default:
		return fmt.Errorf("unknown record type %d", uint8(rec.Type))
	}
}

// condsMatcher compiles a Delete record's equality conjuncts into a row
// predicate.
func condsMatcher(t *storage.Table, conds []wal.Cond) (func(value.Row) bool, error) {
	type posCond struct {
		pos int
		val value.Value
	}
	resolved := make([]posCond, len(conds))
	for i, c := range conds {
		pos, ok := t.Rel.AttrIndex(c.Col)
		if !ok {
			return nil, fmt.Errorf("table %s has no column %q", t.Rel.Name, c.Col)
		}
		resolved[i] = posCond{pos: pos, val: c.Val}
	}
	return func(r value.Row) bool {
		for _, c := range resolved {
			if !value.Equal(r[c.pos], c.val) {
				return false
			}
		}
		return true
	}, nil
}
