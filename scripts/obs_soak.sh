#!/usr/bin/env bash
# Observability soak: run beasd with tracing, slow-query logging,
# workload digests and the flight recorder over a durable store,
# exercise it, kill -9, recover, and verify that
#   - the /metrics exposition stays lint-clean and no counter regresses
#     except by process restart (promtext compare -allow-reset),
#   - the capture survives the crash (readable minus at most one torn
#     tail line) and beasreplay reproduces every recorded baseline
#     bit-identically against the recovered daemon.
#
# Usage: scripts/obs_soak.sh [workdir]   (defaults to a fresh mktemp -d)
set -euo pipefail

cd "$(dirname "$0")/.."
DIR=${1:-$(mktemp -d)}
ADDR=127.0.0.1:7171
BASE=http://$ADDR
PID=

go build -o "$DIR/beasd" ./cmd/beasd
go build -o "$DIR/beasreplay" ./cmd/beasreplay

start_beasd() {
  # The capture directory is a sibling of the store, not inside it: the
  # WAL recovery scan must never see capture segments.
  "$DIR/beasd" -addr "$ADDR" -tlc 1 -data "$DIR/store" \
    -trace -trace-sample 1 \
    -slow-query-fetch 1 -slow-query-log "$DIR/slow.jsonl" \
    -capture "$DIR/capture" -digest-topk 64 \
    >>"$DIR/beasd.log" 2>&1 &
  PID=$!
}

wait_healthy() {
  for _ in $(seq 300); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "beasd did not become healthy; log tail:" >&2
  tail -20 "$DIR/beasd.log" >&2
  exit 1
}

run_queries() {
  for pnum in 1000 1001 1002 1003 1004; do
    curl -sf -XPOST "$BASE/query" \
      -d "{\"sql\": \"SELECT recnum, region FROM call WHERE pnum = $pnum AND date = 20160315\"}" \
      >/dev/null
  done
}

cleanup() { [ -n "$PID" ] && kill "$PID" 2>/dev/null || true; }
trap cleanup EXIT

echo "== first run (seeding TLC scale 1 into $DIR/store)"
start_beasd
wait_healthy
run_queries

echo "== trace header + endpoint"
curl -sfi -XPOST "$BASE/query" \
  -d '{"sql": "SELECT recnum, region FROM call WHERE pnum = 1000 AND date = 20160315"}' \
  | grep -qi '^x-beas-trace-id:' || { echo "no X-Beas-Trace-Id header" >&2; exit 1; }
curl -sf "$BASE/trace" | grep -q '"id"' || { echo "/trace listing empty" >&2; exit 1; }

echo "== digests populated"
curl -sf "$BASE/digests" | grep -q '"fingerprint"' \
  || { echo "/digests has no entries after queries" >&2; exit 1; }

echo "== scrape + lint (before)"
curl -sf "$BASE/metrics" >"$DIR/before.prom"
go run ./cmd/promtext lint "$DIR/before.prom"
grep -q '^beas_digest_observations_total' "$DIR/before.prom" \
  || { echo "beas_digest_observations_total missing from /metrics" >&2; exit 1; }
grep -q '^beas_capture_records_total' "$DIR/before.prom" \
  || { echo "beas_capture_records_total missing from /metrics" >&2; exit 1; }

echo "== kill -9 and recover"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
# Freeze the crash-time capture: this is the workload the recovered
# daemon must answer identically. (The restarted recorder starts a new
# segment and retention may prune old ones; the copy is the baseline.)
cp -r "$DIR/capture" "$DIR/capture-run1"
start_beasd
wait_healthy
run_queries

echo "== scrape + lint (after) and counter checks"
curl -sf "$BASE/metrics" >"$DIR/after.prom"
go run ./cmd/promtext lint "$DIR/after.prom"
# Across the kill -9: decreases are process resets, nothing else may
# regress. Within the recovered process: strictly monotonic.
go run ./cmd/promtext compare -allow-reset "$DIR/before.prom" "$DIR/after.prom"
run_queries
curl -sf "$BASE/metrics" >"$DIR/after2.prom"
go run ./cmd/promtext compare "$DIR/after.prom" "$DIR/after2.prom"
grep -q '^beas_digest_observations_total' "$DIR/after2.prom" \
  || { echo "digest counters missing after recovery" >&2; exit 1; }

echo "== recovered healthz carries WAL position"
curl -sf "$BASE/healthz" | grep -q '"wal_last_lsn"' \
  || { echo "healthz missing wal_last_lsn after recovery" >&2; exit 1; }

echo "== replay crash-time capture against recovered daemon"
# The capture survived kill -9 (minus at most one torn final line) and
# the recovered store must answer every baseline bit-identically.
"$DIR/beasreplay" -capture "$DIR/capture-run1" -addr "$BASE" \
  || { echo "beasreplay found divergence after recovery" >&2; exit 1; }

echo "== slow-query log captured entries"
[ -s "$DIR/slow.jsonl" ] || { echo "slow-query log is empty" >&2; exit 1; }
grep -q '"sql"' "$DIR/slow.jsonl" || { echo "slow-query log has no sql field" >&2; exit 1; }
grep -q '"fingerprint"' "$DIR/slow.jsonl" \
  || { echo "slow-query log has no fingerprint field" >&2; exit 1; }

echo "OK: soak passed (workdir $DIR)"
