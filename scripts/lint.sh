#!/usr/bin/env bash
# lint.sh — the repo's full static-analysis gate, runnable offline.
#
#   scripts/lint.sh            gofmt + go vet + beaslint (both modes)
#   scripts/lint.sh -fast      skip the vettool pass (single beaslint run)
#
# beaslint is exercised both standalone (its own loader, no build cache
# needed) and as a vettool (go vet -vettool=...), which is how CI and
# editors integrate it alongside the standard vet checks.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[ "${1:-}" = "-fast" ] && fast=1

echo "==> gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> beaslint (standalone)"
go run ./cmd/beaslint ./...

if [ "$fast" = "0" ]; then
  echo "==> beaslint (as go vet tool)"
  mkdir -p bin
  go build -o bin/beaslint ./cmd/beaslint
  ./bin/beaslint -list
  go vet -vettool="$PWD/bin/beaslint" ./...
fi

echo "lint OK"
