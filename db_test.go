package beas

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallDB builds a tiny single-table database used by the facade tests.
func smallDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustCreateTable("call", "pnum INT", "recnum INT", "date INT", "region STRING")
	db.MustInsert("call", 1, 100, 20240101, "east")
	db.MustInsert("call", 1, 101, 20240101, "west")
	db.MustInsert("call", 2, 102, 20240102, "east")
	db.MustRegisterConstraint("call({pnum, date} -> {recnum, region}, 100)")
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable("t", "noTypeHere"); err == nil {
		t.Error("malformed column spec should fail")
	}
	if err := db.CreateTable("t", "a BLOB"); err == nil {
		t.Error("unknown type should fail")
	}
	if err := db.CreateTable("t", "a INT"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t", "a INT"); err == nil {
		t.Error("duplicate table should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	db := smallDB(t)
	if err := db.Insert("ghost", 1); err == nil {
		t.Error("insert into missing table should fail")
	}
	if err := db.Insert("call", "not-an-int", 1, 2, "r"); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := db.Insert("call", 1, 2, 3); err == nil {
		t.Error("arity mismatch should fail")
	}
	type weird struct{}
	if err := db.Insert("call", weird{}, 1, 2, "r"); err == nil {
		t.Error("unsupported Go type should fail")
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	db := smallDB(t)
	sql := "SELECT recnum FROM call WHERE pnum = 1 AND date = 20240101"
	res, err := db.QueryBounded(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	n, err := db.Delete("call", map[string]any{"recnum": 100})
	if err != nil || n != 1 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	res, err = db.QueryBounded(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 101 {
		t.Errorf("index not maintained after delete: %v", res.Rows)
	}
	if _, err := db.Delete("call", map[string]any{"ghost": 1}); err == nil {
		t.Error("delete on missing column should fail")
	}
	if _, err := db.Delete("ghost", nil); err == nil {
		t.Error("delete on missing table should fail")
	}
}

func TestInsertMaintainsIndexes(t *testing.T) {
	db := smallDB(t)
	db.MustInsert("call", 1, 103, 20240101, "north")
	res, err := db.QueryBounded("SELECT recnum FROM call WHERE pnum = 1 AND date = 20240101")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows after insert = %d, want 3", len(res.Rows))
	}
}

func TestRegisterConstraintErrors(t *testing.T) {
	db := smallDB(t)
	if err := db.RegisterConstraint("garbage"); err == nil {
		t.Error("malformed constraint should fail")
	}
	if err := db.RegisterConstraint("call({pnum, date} -> {recnum, region}, 100)"); err == nil {
		t.Error("duplicate constraint should fail")
	}
	// Declared N below the data's real cardinality fails strictly.
	if err := db.RegisterConstraint("call({date} -> {recnum}, 1)"); err == nil {
		t.Error("non-conforming constraint should fail")
	}
	// But auto-widening picks up the real bound.
	spec, err := db.RegisterConstraintAuto("call", []string{"date"}, []string{"recnum"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(spec, "2") {
		t.Errorf("auto-widened spec = %q, want N = 2", spec)
	}
}

func TestDropConstraint(t *testing.T) {
	db := smallDB(t)
	spec := db.Constraints()[0]
	if err := db.DropConstraint(spec); err != nil {
		t.Fatal(err)
	}
	if err := db.DropConstraint(spec); err == nil {
		t.Error("double drop should fail")
	}
	info, err := db.Check("SELECT recnum FROM call WHERE pnum = 1 AND date = 20240101")
	if err != nil {
		t.Fatal(err)
	}
	if info.Covered {
		t.Error("query must lose coverage once the constraint is dropped")
	}
}

func TestQueryBoundedRejectsUncovered(t *testing.T) {
	db := smallDB(t)
	if _, err := db.QueryBounded("SELECT region FROM call WHERE recnum = 100"); err == nil {
		t.Error("QueryBounded on uncovered query should fail")
	}
}

func TestUnion(t *testing.T) {
	db := smallDB(t)
	sql := `SELECT region FROM call WHERE pnum = 1 AND date = 20240101
	        UNION SELECT region FROM call WHERE pnum = 2 AND date = 20240102`
	info, err := db.Check(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Covered {
		t.Fatalf("union of covered branches must be covered: %s", info.Reason)
	}
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	// east, west from branch 1; east from branch 2 deduplicates.
	if len(res.Rows) != 2 {
		t.Errorf("UNION rows = %v", rowsToStrings(res))
	}
	all, err := db.Query(strings.Replace(sql, "UNION", "UNION ALL", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rows) != 3 {
		t.Errorf("UNION ALL rows = %v", rowsToStrings(all))
	}
	if _, err := db.Query("SELECT region FROM call UNION SELECT region, pnum FROM call"); err == nil {
		t.Error("arity mismatch across UNION should fail")
	}
}

func TestCSVRoundTripThroughFacade(t *testing.T) {
	db := smallDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "call.csv")
	if err := db.SaveCSV("call", path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	db2.MustCreateTable("call", "pnum INT", "recnum INT", "date INT", "region STRING")
	if err := db2.LoadCSV("call", path); err != nil {
		t.Fatal(err)
	}
	n, _ := db2.RowCount("call")
	if n != 3 {
		t.Errorf("round trip rows = %d", n)
	}
	if err := db2.LoadCSV("ghost", path); err == nil {
		t.Error("loading into missing table should fail")
	}
}

func TestResultString(t *testing.T) {
	db := smallDB(t)
	res, err := db.Query("SELECT recnum, region FROM call WHERE pnum = 1 AND date = 20240101 ORDER BY recnum")
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"recnum", "region", "100", "east", "(2 rows)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() missing %q:\n%s", want, s)
		}
	}
}

func TestExplainUncovered(t *testing.T) {
	db := smallDB(t)
	text, err := db.Explain("SELECT region FROM call WHERE recnum = 5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "not covered") {
		t.Errorf("Explain = %q", text)
	}
}

func TestEmptyGuaranteedThroughFacade(t *testing.T) {
	db := smallDB(t)
	res, err := db.Query("SELECT region FROM call WHERE pnum = 1 AND pnum = 2 AND date = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || res.Stats.TuplesFetched != 0 {
		t.Errorf("contradiction should touch no data: %+v", res.Stats)
	}
	info, err := db.Check("SELECT region FROM call WHERE pnum = 1 AND pnum = 2 AND date = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !info.EmptyGuaranteed || !info.WithinBudget(0) {
		t.Errorf("CheckInfo = %+v", info)
	}
}

func TestQueryApproxRequiresCoverage(t *testing.T) {
	db := smallDB(t)
	if _, _, err := db.QueryApprox("SELECT region FROM call WHERE recnum = 5", 10); err == nil {
		t.Error("approximation of uncovered query should fail")
	}
}

func TestQueryBaselineUnknownProfile(t *testing.T) {
	db := smallDB(t)
	if _, err := db.QueryBaseline("SELECT region FROM call WHERE pnum = 1", Baseline("oracle")); err == nil {
		t.Error("unknown baseline should fail")
	}
}

func TestParseErrorsSurface(t *testing.T) {
	db := smallDB(t)
	if _, err := db.Query("SELEC region FROM call"); err == nil {
		t.Error("syntax error should surface")
	}
	if _, err := db.Check("SELECT ghost FROM call"); err == nil {
		t.Error("resolution error should surface")
	}
}

func TestConformsSurfacesViolations(t *testing.T) {
	db := smallDB(t)
	ok, viols := db.Conforms()
	if !ok || len(viols) != 0 {
		t.Fatalf("fresh db should conform: %v", viols)
	}
	// Drive a bucket over its bound: the strict index records violations.
	if err := db.RegisterConstraint("call({pnum} -> {recnum}, 2)"); err != nil {
		t.Fatal(err)
	}
	db.MustInsert("call", 1, 500, 20240103, "east")
	db.MustInsert("call", 1, 501, 20240104, "east")
	ok, viols = db.Conforms()
	if ok || len(viols) == 0 {
		t.Error("violation must be reported after overflowing inserts")
	}
}

func TestAccessSchemaFootprint(t *testing.T) {
	db := smallDB(t)
	if db.AccessSchemaFootprint() != 3 {
		t.Errorf("footprint = %d, want 3 distinct (X, Y) pairs", db.AccessSchemaFootprint())
	}
}

func TestToValueConversions(t *testing.T) {
	for _, v := range []any{nil, 1, int32(2), int64(3), float32(1.5), 2.5, "s", true} {
		if _, err := ToValue(v); err != nil {
			t.Errorf("ToValue(%T): %v", v, err)
		}
	}
	if _, err := ToValue(struct{}{}); err == nil {
		t.Error("ToValue on struct should fail")
	}
}

func TestBagSemanticsThroughBoundedPlans(t *testing.T) {
	// Duplicate base rows must survive bounded evaluation (the index
	// stores distinct partial tuples with witness counts).
	db := NewDB()
	db.MustCreateTable("t", "k INT", "v STRING")
	db.MustInsert("t", 1, "x")
	db.MustInsert("t", 1, "x") // exact duplicate
	db.MustInsert("t", 1, "y")
	db.MustRegisterConstraint("t({k} -> {v}, 10)")

	res, err := db.QueryBounded("SELECT v FROM t WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("bag semantics lost: %v", rowsToStrings(res))
	}
	if res.Stats.TuplesFetched != 2 {
		t.Errorf("index should fetch 2 distinct partial tuples, fetched %d", res.Stats.TuplesFetched)
	}
	cnt, err := db.QueryBounded("SELECT COUNT(*) FROM t WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Rows[0][0].I != 3 {
		t.Errorf("COUNT(*) = %v, want 3", cnt.Rows[0][0])
	}
	dis, err := db.QueryBounded("SELECT COUNT(DISTINCT v) FROM t WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if dis.Rows[0][0].I != 2 {
		t.Errorf("COUNT(DISTINCT v) = %v, want 2", dis.Rows[0][0])
	}
}
