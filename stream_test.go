package beas

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// This file checks the streaming execution core end-to-end: QueryIter
// must return bit-identical bags to Query on every evaluation mode, and
// LIMIT queries must terminate the pipeline early instead of
// materialising the full join.

// collectIter drains a cursor through the per-row API.
func collectIter(t *testing.T, ri *RowIter) []Row {
	t.Helper()
	var rows []Row
	for {
		r, ok, err := ri.Next()
		if err != nil {
			t.Fatalf("RowIter.Next: %v", err)
		}
		if !ok {
			break
		}
		rows = append(rows, append(Row{}, r...))
	}
	if err := ri.Close(); err != nil {
		t.Fatalf("RowIter.Close: %v", err)
	}
	return rows
}

// TestQueryIterMatchesQuery streams the randomized equivalence corpus
// through QueryIter and compares against the materialising Query on
// every evaluation mode (bounded, partially bounded, conventional).
func TestQueryIterMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		db := randomDB(t, rng)
		for i := 0; i < 15; i++ {
			sql := randomSQL(rng)
			res, err := db.Query(sql)
			if err != nil {
				t.Fatalf("Query(%q): %v", sql, err)
			}
			ri, err := db.QueryIter(sql)
			if err != nil {
				t.Fatalf("QueryIter(%q): %v", sql, err)
			}
			got := collectIter(t, ri)
			if !equalBags(bag(res.Rows), bag(got)) {
				t.Fatalf("QueryIter(%q) bag differs from Query:\n iter: %d rows\n query: %d rows",
					sql, len(got), len(res.Rows))
			}
			if ri.Stats().Mode != res.Stats.Mode {
				t.Errorf("QueryIter(%q) mode = %s, Query mode = %s", sql, ri.Stats().Mode, res.Stats.Mode)
			}
		}
	}
}

// TestQueryIterUnion checks the streamed UNION / UNION ALL semantics
// (shared dedup up to the last plain UNION) against Query.
func TestQueryIterUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randomDB(t, rng)
	for _, sql := range []string{
		"SELECT a, b FROM r WHERE a = 1 UNION SELECT a, b FROM r WHERE b = 2",
		"SELECT a, b FROM r WHERE a = 1 UNION ALL SELECT a, b FROM r WHERE a = 1",
		"SELECT a, b FROM r WHERE a = 1 UNION SELECT a, b FROM r WHERE b = 2 UNION ALL SELECT a, b FROM r WHERE a = 1",
	} {
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("Query(%q): %v", sql, err)
		}
		ri, err := db.QueryIter(sql)
		if err != nil {
			t.Fatalf("QueryIter(%q): %v", sql, err)
		}
		got := collectIter(t, ri)
		if !equalBags(bag(res.Rows), bag(got)) {
			t.Fatalf("QueryIter(%q): %d rows, Query: %d rows", sql, len(got), len(res.Rows))
		}
	}
}

// TestQueryIterWeightedBags checks bag multiplicities survive streaming
// through the bounded executor: constraint indices store distinct
// partial tuples with witness counts, and the weights must expand to
// exactly the duplicates a conventional evaluation produces.
func TestQueryIterWeightedBags(t *testing.T) {
	db := NewDB()
	db.MustCreateTable("u", "k INT", "v INT")
	for i := 0; i < 4; i++ {
		db.MustInsert("u", 1, 7) // four identical rows: weight 4 in the index
	}
	db.MustInsert("u", 1, 8)
	db.MustRegisterConstraint("u({k} -> {v}, 10)")

	sql := "SELECT v FROM u WHERE k = 1"
	res, err := db.QueryBounded(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("bounded bag size = %d, want 5", len(res.Rows))
	}
	ri, err := db.QueryIter(sql)
	if err != nil {
		t.Fatal(err)
	}
	got := collectIter(t, ri)
	if !equalBags(bag(res.Rows), bag(got)) {
		t.Fatalf("streamed bag %v != bounded bag %v", bag(got), bag(res.Rows))
	}
}

// earlyExitDB builds two relations whose join is quadratically larger
// than either input, so full materialisation is visible in the stats.
func earlyExitDB(t testing.TB, n int) *DB {
	db := NewDB()
	db.MustCreateTable("big1", "k INT", "v INT")
	db.MustCreateTable("big2", "k INT", "w INT")
	for i := 0; i < n; i++ {
		db.MustInsert("big1", i%10, i)
		db.MustInsert("big2", i%10, -i)
	}
	return db
}

// joinRowsOut sums the output cardinality of the join operators in a
// conventional plan's stats.
func joinRowsOut(st Stats) int64 {
	var out int64
	for _, op := range st.Ops {
		if strings.Contains(op.Op, "⋈") {
			out += op.RowsOut
		}
	}
	return out
}

// TestLimitEarlyTermination: a LIMIT k query without ORDER BY must stop
// pulling from the join pipeline after k rows — the join may produce at
// most about one batch per pipeline stage, not the full cross product of
// the matching keys.
func TestLimitEarlyTermination(t *testing.T) {
	const n = 2000 // join cardinality n*n/10 = 400k
	db := earlyExitDB(t, n)
	join := "SELECT big1.v, big2.w FROM big1, big2 WHERE big1.k = big2.k"

	full, err := db.QueryBaseline(join, BaselinePostgres)
	if err != nil {
		t.Fatal(err)
	}
	lim, err := db.QueryBaseline(join+" LIMIT 5", BaselinePostgres)
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.Rows) != 5 {
		t.Fatalf("LIMIT 5 returned %d rows", len(lim.Rows))
	}
	fullJoin, limJoin := joinRowsOut(full.Stats), joinRowsOut(lim.Stats)
	if fullJoin < int64(n) {
		t.Fatalf("full join produced %d rows, expected ≥ %d", fullJoin, n)
	}
	// ≥10× fewer intermediate rows than full materialisation; in practice
	// the limited run emits about one batch.
	if limJoin*10 > fullJoin {
		t.Errorf("LIMIT join produced %d intermediate rows, full join %d — no early exit", limJoin, fullJoin)
	}
	// The probe-side scan must also stop early: scanned rows well below
	// the two full relations.
	if lim.Stats.TuplesScanned >= full.Stats.TuplesScanned {
		t.Errorf("LIMIT scanned %d rows, full scanned %d — scans did not stop",
			lim.Stats.TuplesScanned, full.Stats.TuplesScanned)
	}
}

// TestLimitOffsetStreaming checks OFFSET composes with the early exit
// and agrees with full materialisation.
func TestLimitOffsetStreaming(t *testing.T) {
	db := earlyExitDB(t, 500)
	base := "SELECT big1.v FROM big1, big2 WHERE big1.k = big2.k"
	full, err := db.QueryBaseline(base, BaselinePostgres)
	if err != nil {
		t.Fatal(err)
	}
	for _, clause := range []string{" LIMIT 7", " LIMIT 7 OFFSET 13", " OFFSET 24990"} {
		res, err := db.QueryBaseline(base+clause, BaselinePostgres)
		if err != nil {
			t.Fatalf("%s: %v", clause, err)
		}
		want := clipRows(full.Rows, clause)
		if len(res.Rows) != len(want) {
			t.Errorf("%s: got %d rows, want %d", clause, len(res.Rows), len(want))
		}
	}
}

// clipRows applies the clause to materialised rows for comparison.
func clipRows(rows []Row, clause string) []Row {
	var limit, offset int
	hasLimit := false
	if _, err := fmt.Sscanf(clause, " LIMIT %d OFFSET %d", &limit, &offset); err == nil {
		hasLimit = true
	} else if _, err := fmt.Sscanf(clause, " LIMIT %d", &limit); err == nil {
		hasLimit = true
	} else {
		fmt.Sscanf(clause, " OFFSET %d", &offset)
	}
	if offset >= len(rows) {
		return nil
	}
	rows = rows[offset:]
	if hasLimit && limit < len(rows) {
		rows = rows[:limit]
	}
	return rows
}

// TestQueryIterEarlyClose abandons a cursor mid-stream and checks the
// database is released (writes proceed) and a fresh query still works.
func TestQueryIterEarlyClose(t *testing.T) {
	db := earlyExitDB(t, 2000)
	ri, err := db.QueryIter("SELECT big1.v, big2.w FROM big1, big2 WHERE big1.k = big2.k")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ri.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 {
		t.Fatal("first batch empty")
	}
	if err := ri.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ri.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := ri.NextBatch(); err != nil {
		t.Fatalf("NextBatch after Close: %v", err)
	}
	// The read lock must be released: a write and another query succeed.
	if err := db.Insert("big1", 3, 12345); err != nil {
		t.Fatalf("insert after Close: %v", err)
	}
	if _, err := db.Query("SELECT v FROM big1 WHERE k = 3"); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
}

// TestQueryIterStats: fully drained cursors must report the same data
// access as the materialising path.
func TestQueryIterStats(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := randomDB(t, rng)
	sql := "SELECT r.a, r.b FROM r WHERE r.a = 1"
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := db.QueryIter(sql)
	if err != nil {
		t.Fatal(err)
	}
	collectIter(t, ri)
	st := ri.Stats()
	if st.TuplesFetched != res.Stats.TuplesFetched {
		t.Errorf("TuplesFetched = %d, want %d", st.TuplesFetched, res.Stats.TuplesFetched)
	}
	if st.Covered != res.Stats.Covered || st.Bound != res.Stats.Bound {
		t.Errorf("stats mismatch: %+v vs %+v", st, res.Stats)
	}
	if len(st.FetchSteps) != len(res.Stats.FetchSteps) {
		t.Errorf("FetchSteps = %d, want %d", len(st.FetchSteps), len(res.Stats.FetchSteps))
	}
}

// TestTLCStreaming runs the built-in TLC queries through QueryIter at a
// small scale and compares bags against Query — covered, partially
// bounded and aggregate queries included.
func TestTLCStreaming(t *testing.T) {
	db := MustNewTLCDB(1)
	for _, q := range TLCQueries() {
		res, err := db.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		ri, err := db.QueryIter(q.SQL)
		if err != nil {
			t.Fatalf("%s: QueryIter: %v", q.Name, err)
		}
		got := collectIter(t, ri)
		if !equalBags(bag(res.Rows), bag(got)) {
			t.Errorf("%s: QueryIter %d rows, Query %d rows", q.Name, len(got), len(res.Rows))
		}
	}
}
