package beas

// Serial ↔ parallel equivalence: a query evaluated with parallelism n
// must return bit-identical rows — same bag, same order — as the serial
// executor, with the same deduced bound honoured and the same number of
// tuples fetched (the parallel fetch phase merges per-worker memo tables
// before counting, so the distinct-key statistics cannot drift). Run
// with -race -cpu 1,4 in CI.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/bounded-eval/beas/internal/value"
)

// orderedKeys renders rows position by position, so comparisons catch
// ordering differences that a sorted bag would hide.
func orderedKeys(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.Key(r)
	}
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParallelMatchesSerialOnCorpus(t *testing.T) {
	const databases, queriesPerDB = 4, 30
	covered := 0
	for d := 0; d < databases; d++ {
		rng := rand.New(rand.NewSource(int64(7000 + d)))
		db := randomDB(t, rng)
		for qi := 0; qi < queriesPerDB; qi++ {
			sql := randomSQL(rng)
			db.SetParallelism(1)
			serial, err := db.Query(sql)
			if err != nil {
				t.Fatalf("serial Query(%q): %v", sql, err)
			}
			db.SetParallelism(4)
			par, err := db.Query(sql)
			if err != nil {
				t.Fatalf("parallel Query(%q): %v", sql, err)
			}
			if !sameRows(orderedKeys(serial.Rows), orderedKeys(par.Rows)) {
				t.Fatalf("parallel result diverges on %q (mode=%s):\nserial   = %v\nparallel = %v",
					sql, serial.Stats.Mode, orderedKeys(serial.Rows), orderedKeys(par.Rows))
			}
			if serial.Stats.Covered {
				covered++
				// The parallel executor probes exactly the serial key set:
				// per-worker memo tables merge before the statistics are
				// computed, so |D_Q| is identical, and the deduced bound
				// holds for the parallel plan too.
				if par.Stats.TuplesFetched != serial.Stats.TuplesFetched {
					t.Fatalf("%q: parallel fetched %d tuples, serial %d",
						sql, par.Stats.TuplesFetched, serial.Stats.TuplesFetched)
				}
				if par.Stats.Bound != 0 && par.Stats.Bound != ^uint64(0) &&
					uint64(par.Stats.TuplesFetched) > par.Stats.Bound {
					t.Fatalf("%q: parallel fetched %d > deduced bound %d",
						sql, par.Stats.TuplesFetched, par.Stats.Bound)
				}
			}
			// The streaming cursor takes the same parallel path.
			if qi%5 == 0 {
				ri, err := db.QueryIter(sql)
				if err != nil {
					t.Fatalf("parallel QueryIter(%q): %v", sql, err)
				}
				var got []Row
				for {
					batch, err := ri.NextBatch()
					if err != nil {
						t.Fatalf("parallel cursor on %q: %v", sql, err)
					}
					if batch == nil {
						break
					}
					for _, r := range batch {
						got = append(got, r)
					}
				}
				ri.Close()
				if !sameRows(orderedKeys(serial.Rows), orderedKeys(got)) {
					t.Fatalf("parallel cursor diverges on %q", sql)
				}
			}
			db.SetParallelism(1)
		}
	}
	if covered == 0 {
		t.Fatal("no covered queries sampled; generator drifted")
	}
}

func TestParallelMatchesSerialOnTLC(t *testing.T) {
	db := MustNewTLCDB(2)
	for _, q := range TLCQueries() {
		db.SetParallelism(1)
		serial, err := db.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s serial: %v", q.Name, err)
		}
		for _, par := range []int{2, 4, 7} {
			db.SetParallelism(par)
			got, err := db.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s parallelism=%d: %v", q.Name, par, err)
			}
			if !sameRows(orderedKeys(serial.Rows), orderedKeys(got.Rows)) {
				t.Fatalf("%s: parallelism=%d diverges from serial (%d vs %d rows)",
					q.Name, par, len(got.Rows), len(serial.Rows))
			}
			if serial.Stats.Covered && got.Stats.TuplesFetched != serial.Stats.TuplesFetched {
				t.Fatalf("%s: parallelism=%d fetched %d tuples, serial %d",
					q.Name, par, got.Stats.TuplesFetched, serial.Stats.TuplesFetched)
			}
		}
		db.SetParallelism(1)
	}
}

// TestParallelConcurrentQueries runs many parallel-mode queries through
// a shared database at once: inter-query concurrency (the server's
// worker pool) composed with intra-query parallelism, under -race.
func TestParallelConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	db := randomDB(t, rng)
	db.SetParallelism(3)
	sqls := make([]string, 8)
	want := make([][]string, len(sqls))
	for i := range sqls {
		sqls[i] = randomSQL(rng)
		res, err := db.Query(sqls[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = orderedKeys(res.Rows)
	}
	errc := make(chan error, 4*len(sqls))
	for w := 0; w < 4; w++ {
		go func() {
			for i, sql := range sqls {
				res, err := db.Query(sql)
				if err != nil {
					errc <- fmt.Errorf("Query(%q): %w", sql, err)
					continue
				}
				if !sameRows(orderedKeys(res.Rows), want[i]) {
					errc <- fmt.Errorf("concurrent parallel result diverges on %q", sql)
					continue
				}
				errc <- nil
			}
		}()
	}
	for i := 0; i < 4*len(sqls); i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelJoinLimitEarlyExit pins the windowed probe design of the
// parallel hash join: an uncovered fallback query has no deduced bound,
// so the probe side must keep streaming — a LIMIT that closes the
// pipeline early has to stop the scans after a window or two, not after
// the whole relation.
func TestParallelJoinLimitEarlyExit(t *testing.T) {
	db := MustNewTLCDB(2)
	db.SetParallelism(4)
	defer db.SetParallelism(1)
	join := "SELECT call.region, package.pid FROM call, package WHERE call.pnum = package.pnum"
	full, err := db.Query(join)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := db.Query(join + " LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Rows) != 10 {
		t.Fatalf("LIMIT 10 returned %d rows", len(limited.Rows))
	}
	if limited.Stats.TuplesScanned >= full.Stats.TuplesScanned {
		t.Fatalf("parallel join with LIMIT scanned %d rows, full join %d — probe side must stream, not materialise",
			limited.Stats.TuplesScanned, full.Stats.TuplesScanned)
	}
}

func TestSetParallelismNormalises(t *testing.T) {
	db := NewDB()
	if got := db.Parallelism(); got != 1 {
		t.Errorf("default parallelism = %d, want 1", got)
	}
	db.SetParallelism(0)
	if got := db.Parallelism(); got != 1 {
		t.Errorf("SetParallelism(0) → %d, want 1", got)
	}
	db.SetParallelism(8)
	if got := db.Parallelism(); got != 8 {
		t.Errorf("SetParallelism(8) → %d, want 8", got)
	}
}
