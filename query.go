package beas

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/approx"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/engine"
	"github.com/bounded-eval/beas/internal/exec"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/qcache"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// Baseline identifies a conventional-DBMS emulation profile.
type Baseline string

// Baseline profiles mirroring the paper's comparators.
const (
	BaselinePostgres Baseline = "postgresql"
	BaselineMySQL    Baseline = "mysql"
	BaselineMariaDB  Baseline = "mariadb"
)

func baselineProfile(b Baseline) (engine.Profile, error) {
	switch b {
	case BaselinePostgres, "":
		return engine.ProfilePostgres, nil
	case BaselineMySQL:
		return engine.ProfileMySQL, nil
	case BaselineMariaDB:
		return engine.ProfileMariaDB, nil
	default:
		return engine.Profile{}, fmt.Errorf("beas: unknown baseline %q", b)
	}
}

// parsed is a fully analysed statement: one query per UNION branch.
type parsed struct {
	branches []*analyze.Query
	unionAll []bool // unionAll[i] applies between branch i-1 and i
}

// parse analyses sql through the template cache, taking the catalog
// read lock for the duration. Callers that go on to execute use
// parseLocked under their own lock instead, so analysis and execution
// see the same catalog.
func (db *DB) parse(sql string) (*parsed, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, _, err := db.parseLocked(sql)
	if err != nil {
		return nil, err
	}
	return t.Parsed.(*parsed), nil
}

// parseLocked parses and analyses sql through the bounded template
// cache. The caller must hold db.mu (read suffices) and keep holding it
// while it uses the returned analysis.
//
// Holding the lock across the cache lookup, the analysis and the store
// closes the store-after-invalidate race: catalogVersion only advances
// under the write lock, so while we hold the read lock a concurrent DDL
// can neither invalidate the entry we just validated nor slip between
// our version check and our PutTemplate — a stale template can never be
// re-inserted over a newer catalog. It also guarantees the caller
// executes against the same catalog the analysis saw.
func (db *DB) parseLocked(sql string) (*qcache.Template, bool, error) {
	if t, ok := db.qc.GetTemplate(sql, db.catalogVersion); ok {
		return t, true, nil
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, false, err
	}
	p := &parsed{}
	all := false
	for s := stmt; s != nil; s = s.Union {
		q, err := analyze.Analyze(s.Select, db.schema)
		if err != nil {
			return nil, false, err
		}
		p.branches = append(p.branches, q)
		p.unionAll = append(p.unionAll, all)
		all = s.UnionAll
	}
	for i := 1; i < len(p.branches); i++ {
		if len(p.branches[i].Outputs) != len(p.branches[0].Outputs) {
			return nil, false, fmt.Errorf("beas: UNION branches have different arities")
		}
	}
	t := &qcache.Template{Text: sql, Parsed: p, Version: db.catalogVersion}
	t.ResultKey, t.Fingerprint, t.Params, t.Shareable = resultKey(sql, p)
	db.qc.PutTemplate(t)
	return t, false, nil
}

// Canonicalize resolves sql to its canonical workload identity: the
// normalized fingerprint shared by all syntactic variants of the
// statement (the key of the workload digests and the capture log) and
// the extracted parameter vector in placeholder order. Statements the
// canonicalizer cannot share get a text-hash fingerprint and no
// parameters. Nothing is executed.
func (db *DB) Canonicalize(sql string) (string, []Value, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, _, err := db.parseLocked(sql)
	if err != nil {
		return "", nil, err
	}
	return t.Fingerprint, append([]Value(nil), t.Params...), nil
}

// resultKey computes the canonical identity of a statement's answer:
// the normalized fingerprints of all UNION branches (order and
// UNION/UNION ALL placement preserved — branches contribute bound and
// fetch statistics positionally) plus the extracted parameter vector.
// Statements whose canonical form is not shareable — an unknown
// expression shape, or an equality class carrying several
// constant-bearing conjuncts whose order affects probe order — fall
// back to the literal text, so they still cache, just without
// cross-text sharing.
//
// The parameter-free fingerprint and the parameter vector are returned
// alongside the key: the fingerprint groups all parameterizations of a
// statement in the workload digests and the capture log. Non-shareable
// statements get obs.TextFingerprint of the literal text and nil
// parameters.
func resultKey(sql string, p *parsed) (key, fingerprint string, params []value.Value, shareable bool) {
	var b strings.Builder
	for i, q := range p.branches {
		fp, ps, ok := analyze.Canonical(q)
		if !ok {
			return "!text\x00" + sql, obs.TextFingerprint(sql), nil, false
		}
		if i > 0 {
			if p.unionAll[i] {
				b.WriteString("\x1fUA\x1f")
			} else {
				b.WriteString("\x1fU\x1f")
			}
		}
		b.WriteString(fp)
		params = append(params, ps...)
	}
	fingerprint = b.String()
	b.WriteByte(0)
	b.WriteString(value.Key(params))
	return b.String(), fingerprint, params, true
}

// parseSpanLocked is parseLocked under a "parse" span annotated with the
// template-cache outcome. Callers hold db.mu (read suffices).
func (db *DB) parseSpanLocked(ctx context.Context, sql string) (*qcache.Template, error) {
	_, sp := obs.StartSpan(ctx, "parse")
	t, hit, err := db.parseLocked(sql)
	sp.Set("planCacheHit", hit)
	sp.End()
	return t, err
}

// Check runs the BE Checker: is the query covered by the registered
// access schema, and how much data would a bounded plan fetch? Nothing is
// executed. For UNION queries every branch must be covered; the bound is
// the sum over branches.
func (db *DB) Check(sql string) (*CheckInfo, error) {
	return db.CheckContext(context.Background(), sql)
}

// CheckContext is Check under a context. The checker never touches data
// — it only parses, analyses and walks the access schema — so ctx is
// consulted once up front; an already-cancelled context fails fast
// without taking the catalog lock.
func (db *DB) CheckContext(ctx context.Context, sql string) (*CheckInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, finish := db.startTrace(ctx, "check", sql)
	defer finish()
	db.mu.RLock()
	defer db.mu.RUnlock()
	tmpl, err := db.parseSpanLocked(ctx, sql)
	if err != nil {
		return nil, err
	}
	p := tmpl.Parsed.(*parsed)
	info := &CheckInfo{Covered: true, EmptyGuaranteed: true}
	var planText string
	for i, q := range p.branches {
		chk := db.checkSpanLocked(ctx, q)
		if !chk.EmptyGuaranteed {
			info.EmptyGuaranteed = false
		}
		info.Bound = satAdd(info.Bound, chk.TotalBound)
		info.OutputBound = satAdd(info.OutputBound, chk.OutputBound)
		info.ConstraintsUsed += chk.ConstraintsUsed
		if !chk.Covered {
			info.Covered = false
			if info.Reason == "" {
				info.Reason = chk.Reason
			}
			pp, err := core.NewPartialPlan(q, chk)
			if err == nil {
				planText += fmt.Sprintf("branch %d:\n%s", i+1, pp.Describe(q))
			}
			continue
		}
		plan, err := core.NewPlan(q, chk)
		if err != nil {
			return nil, err
		}
		if len(p.branches) > 1 {
			planText += fmt.Sprintf("branch %d:\n", i+1)
		}
		planText += plan.Describe()
	}
	info.Plan = planText
	return info, nil
}

func satAdd(a, b uint64) uint64 {
	if a+b < a {
		return ^uint64(0)
	}
	return a + b
}

// Query evaluates sql, preferring bounded evaluation: a covered query (or
// UNION branch) runs through a bounded plan; otherwise a partially
// bounded plan runs its covered sub-query boundedly and delegates the
// rest to the conventional engine.
func (db *DB) Query(sql string) (*Result, error) {
	return db.query(context.Background(), sql, true)
}

// QueryContext is Query under a context: cancellation or deadline expiry
// halts the fetch loops and streaming joins at the next batch boundary
// and returns ctx's error. The statistics of a cancelled query reflect
// only the work actually performed.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return db.query(ctx, sql, true)
}

// QueryBounded evaluates sql with a bounded plan only, failing when the
// query is not covered by the access schema.
func (db *DB) QueryBounded(sql string) (*Result, error) {
	return db.query(context.Background(), sql, false)
}

// QueryBoundedContext is QueryBounded under a context.
func (db *DB) QueryBoundedContext(ctx context.Context, sql string) (*Result, error) {
	return db.query(ctx, sql, false)
}

// query runs queryEval and, when workload digests are enabled, folds
// the statement's terminal outcome into the per-fingerprint aggregates.
// With digests off the only cost is one atomic load.
func (db *DB) query(ctx context.Context, sql string, allowFallback bool) (*Result, error) {
	dig := db.digests.Load()
	if dig == nil {
		return db.queryEval(ctx, sql, allowFallback, nil)
	}
	start := time.Now()
	var fp string
	res, err := db.queryEval(ctx, sql, allowFallback, &fp)
	observeQueryDigest(dig, fp, sql, res, err, time.Since(start))
	return res, err
}

// queryEval is the evaluation core behind Query/QueryBounded. When
// fpOut is non-nil it receives the statement's canonical fingerprint as
// soon as analysis succeeds, so the caller can attribute errors that
// happen after parse to the right digest entry.
func (db *DB) queryEval(ctx context.Context, sql string, allowFallback bool, fpOut *string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, finish := db.startTrace(ctx, "query", sql)
	defer finish()
	db.mu.RLock()
	defer db.mu.RUnlock()
	tmpl, err := db.parseSpanLocked(ctx, sql)
	if err != nil {
		return nil, err
	}
	if fpOut != nil {
		*fpOut = tmpl.Fingerprint
	}
	p := tmpl.Parsed.(*parsed)
	start := time.Now()

	// Semantic result cache: serve a fresh materialized answer before
	// even running the checker. A hit is only possible for fully covered
	// statements, so the fallback policy cannot differ.
	cacheOn := db.qc.ResultsEnabled()
	if cacheOn {
		_, sp := obs.StartSpan(ctx, "cache")
		if cr, ok := db.qc.GetResult(tmpl.ResultKey); ok {
			sp.Set("hit", true)
			sp.End()
			res := db.serveCachedLocked(&cr, start)
			res.Stats.Fingerprint = tmpl.Fingerprint
			return res, nil
		}
		sp.Set("hit", false)
		sp.End()
	}

	// Storing an answer needs every base-table version from *before*
	// execution: Store re-checks them so an interleaved mutation can
	// never be double-counted (once in the answer, once as a patch).
	cacheable := cacheOn
	var tvs []qcache.TableVersion
	if cacheable {
		seen := make(map[*storage.Table]bool)
		for _, q := range p.branches {
			for _, a := range q.Atoms {
				t, ok := db.store.Table(a.Rel.Name)
				if !ok {
					cacheable = false
					break
				}
				if !seen[t] {
					seen[t] = true
					tvs = append(tvs, qcache.TableVersion{Table: t, Version: t.Version()})
				}
			}
		}
	}

	res := &Result{Columns: p.branches[0].OutputNames(), Stats: Stats{Mode: ModeBounded, Covered: true, Optimized: db.optzr != nil, Fingerprint: tmpl.Fingerprint}}
	var rows []value.Row
	var cacheSteps []core.StepStat
	var regs []qcache.StepReg
	var firstPlan *core.Plan
	for i, q := range p.branches {
		chk := db.checkSpanLocked(ctx, q)
		var branchRows []value.Row
		switch {
		case chk.Covered:
			plan, err := core.NewPlan(q, chk)
			if err != nil {
				return nil, err
			}
			plan.CollectKeys = cacheable
			var st *core.Stats
			branchRows, st, err = db.runBounded(ctx, plan, chk, res)
			if err != nil {
				return nil, err
			}
			if cacheable {
				if i == 0 {
					firstPlan = plan
				}
				for si := range plan.Steps {
					t, ok := db.store.Table(q.Atoms[plan.Steps[si].Atom].Rel.Name)
					if !ok {
						cacheable = false
						break
					}
					var keys []string
					if st.StepKeys != nil {
						keys = st.StepKeys[si]
					}
					regs = append(regs, qcache.StepReg{Table: t, Step: &plan.Steps[si], Keys: keys, StatIdx: len(cacheSteps) + si})
				}
				cacheSteps = append(cacheSteps, st.Steps...)
			}
		case allowFallback:
			cacheable = false
			var err error
			branchRows, err = db.runPartial(ctx, q, chk, res)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("beas: query is not covered by the access schema: %s", chk.Reason)
		}
		if i > 0 && !p.unionAll[i] {
			rows = exec.Dedup(append(rows, branchRows...))
		} else {
			rows = append(rows, branchRows...)
		}
	}
	res.Rows = rows
	if cacheable {
		db.qc.Store(&qcache.StoreRequest{
			Key: tmpl.ResultKey,
			Result: &qcache.CachedResult{
				Columns:         res.Columns,
				Rows:            rows,
				Bound:           res.Stats.Bound,
				ConstraintsUsed: res.Stats.ConstraintsUsed,
				TuplesFetched:   res.Stats.TuplesFetched,
				Steps:           cacheSteps,
				Plan:            res.Stats.Plan,
				Optimized:       res.Stats.Optimized,
			},
			Branches:    len(p.branches),
			Query:       p.branches[0],
			Plan:        firstPlan,
			Steps:       regs,
			Tables:      tvs,
			OptimizerOn: db.optzr != nil,
		})
	}
	res.Stats.Duration = time.Since(start)
	if res.Stats.Mode == ModeBounded && res.Stats.TuplesFetched == 0 && res.Stats.Bound == 0 {
		res.Stats.Mode = ModeEmpty
	}
	return res, nil
}

// serveCachedLocked materializes a Result from a cache hit. Everything
// data-derived — rows, order, bound, fetch statistics — is the stored
// (patch-maintained) answer; Duration is this serve and CacheHit marks
// the result. Callers hold db.mu (read suffices).
func (db *DB) serveCachedLocked(cr *qcache.CachedResult, start time.Time) *Result {
	res := &Result{Columns: cr.Columns, Rows: cr.Rows, Stats: Stats{
		Mode:            ModeBounded,
		Covered:         true,
		Optimized:       db.optzr != nil,
		Bound:           cr.Bound,
		ConstraintsUsed: cr.ConstraintsUsed,
		TuplesFetched:   cr.TuplesFetched,
		Plan:            cr.Plan,
		CacheHit:        true,
	}}
	for _, s := range cr.Steps {
		res.Stats.FetchSteps = append(res.Stats.FetchSteps, StepStat(s))
	}
	res.Stats.Duration = time.Since(start)
	if res.Stats.TuplesFetched == 0 && res.Stats.Bound == 0 {
		res.Stats.Mode = ModeEmpty
	}
	return res
}

// runBounded executes a bounded plan — across db.par workers when
// parallelism is on — and folds its statistics into res. The raw
// executor stats are also returned for result-cache registration.
func (db *DB) runBounded(ctx context.Context, plan *core.Plan, chk *core.CheckResult, res *Result) ([]value.Row, *core.Stats, error) {
	db.vecPlanLocked(plan)
	ectx, esp := obs.StartSpan(ctx, "execute")
	rows, st, err := core.RunParallelContext(ectx, plan, db.par)
	esp.Set("mode", "bounded").Set("fetched", st.Fetched).Set("rows", st.RowsOut)
	esp.End()
	if err != nil {
		return nil, nil, err
	}
	res.Stats.Bound = satAdd(res.Stats.Bound, chk.TotalBound)
	res.Stats.ConstraintsUsed += chk.ConstraintsUsed
	res.Stats.TuplesFetched += st.Fetched
	for _, s := range st.Steps {
		res.Stats.FetchSteps = append(res.Stats.FetchSteps, StepStat(s))
	}
	res.Stats.Plan += plan.Describe()
	return rows, st, nil
}

// runPartial executes a partially bounded plan and folds statistics.
func (db *DB) runPartial(ctx context.Context, q *analyze.Query, chk *core.CheckResult, res *Result) ([]value.Row, error) {
	pp, err := core.NewPartialPlan(q, chk)
	if err != nil {
		return nil, err
	}
	ectx, esp := obs.StartSpan(ctx, "execute")
	rows, subStats, engStats, err := core.RunPartialContext(ectx, pp, q, db.fallback, db.par)
	if subStats != nil && engStats != nil {
		esp.Set("mode", "partial").Set("fetched", subStats.Fetched).Set("scanned", engStats.Scanned)
	}
	esp.End()
	if err != nil {
		return nil, err
	}
	res.Stats.Covered = false
	if pp.Sub != nil {
		res.Stats.Mode = ModePartial
	} else {
		res.Stats.Mode = ModeConventional
	}
	res.Stats.TuplesFetched += subStats.Fetched
	res.Stats.TuplesScanned += engStats.Scanned
	for _, s := range subStats.Steps {
		res.Stats.FetchSteps = append(res.Stats.FetchSteps, StepStat(s))
	}
	for _, o := range engStats.Ops {
		res.Stats.Ops = append(res.Stats.Ops, OpStat(o))
	}
	res.Stats.Plan += pp.Describe(q)
	return rows, nil
}

// QueryBaseline evaluates sql purely conventionally under one of the
// emulated DBMS profiles, ignoring the access schema — the comparator of
// the paper's evaluation.
func (db *DB) QueryBaseline(sql string, baseline Baseline) (*Result, error) {
	return db.QueryBaselineContext(context.Background(), sql, baseline)
}

// QueryBaselineContext is QueryBaseline under a context: cancellation
// halts the emulated engine's scans and joins at the next batch boundary.
func (db *DB) QueryBaselineContext(ctx context.Context, sql string, baseline Baseline) (*Result, error) {
	prof, err := baselineProfile(baseline)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	tmpl, _, err := db.parseLocked(sql)
	if err != nil {
		return nil, err
	}
	p := tmpl.Parsed.(*parsed)
	start := time.Now()
	eng := engine.New(db.store, prof).WithVectorized(!db.vecOff).WithBatchSize(db.batch)
	res := &Result{Columns: p.branches[0].OutputNames(), Stats: Stats{Mode: ModeConventional}}
	var rows []value.Row
	for i, q := range p.branches {
		branchRows, st, err := eng.RunContext(ctx, q)
		if err != nil {
			return nil, err
		}
		res.Stats.TuplesScanned += st.Scanned
		for _, o := range st.Ops {
			res.Stats.Ops = append(res.Stats.Ops, OpStat(o))
		}
		if i > 0 && !p.unionAll[i] {
			rows = exec.Dedup(append(rows, branchRows...))
		} else {
			rows = append(rows, branchRows...)
		}
	}
	res.Rows = rows
	res.Stats.Plan = eng.Describe(p.branches[0])
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// QueryApprox evaluates a covered query under a budget on the number of
// tuples fetched, returning a subset of the exact answer and a
// deterministic accuracy lower bound (coverage ∈ [0,1]; 1 = exact).
func (db *DB) QueryApprox(sql string, budget int64) (*Result, float64, error) {
	return db.QueryApproxContext(context.Background(), sql, budget)
}

// QueryApproxContext is QueryApprox under a context: cancellation halts
// the budgeted fetch loop and returns ctx's error. Like Query, it runs
// under a trace (parse / check / optimize spans) and honors the
// cost-based optimizer's step ordering.
func (db *DB) QueryApproxContext(ctx context.Context, sql string, budget int64) (*Result, float64, error) {
	dig := db.digests.Load()
	if dig == nil {
		return db.queryApprox(ctx, sql, budget, nil)
	}
	start := time.Now()
	var fp string
	res, cov, err := db.queryApprox(ctx, sql, budget, &fp)
	observeQueryDigest(dig, fp, sql, res, err, time.Since(start))
	return res, cov, err
}

func (db *DB) queryApprox(ctx context.Context, sql string, budget int64, fpOut *string) (*Result, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	ctx, finish := db.startTrace(ctx, "approx", sql)
	defer finish()
	db.mu.RLock()
	defer db.mu.RUnlock()
	tmpl, err := db.parseSpanLocked(ctx, sql)
	if err != nil {
		return nil, 0, err
	}
	if fpOut != nil {
		*fpOut = tmpl.Fingerprint
	}
	p := tmpl.Parsed.(*parsed)
	start := time.Now()
	res := &Result{Columns: p.branches[0].OutputNames(), Stats: Stats{Mode: ModeBounded, Covered: true, Optimized: db.optzr != nil, Fingerprint: tmpl.Fingerprint}}
	coverage := 1.0
	remaining := budget
	var rows []value.Row
	for i, q := range p.branches {
		chk := db.checkSpanLocked(ctx, q)
		if !chk.Covered {
			return nil, 0, fmt.Errorf("beas: approximation requires a covered query: %s", chk.Reason)
		}
		plan, err := core.NewPlan(q, chk)
		if err != nil {
			return nil, 0, err
		}
		budgetHere := remaining
		if budgetHere <= 0 {
			budgetHere = 1
		}
		ar, err := approx.RunContext(ctx, plan, budgetHere)
		if err != nil {
			return nil, 0, err
		}
		remaining -= ar.Fetched
		coverage *= ar.Coverage
		res.Stats.TuplesFetched += ar.Fetched
		res.Stats.Bound = satAdd(res.Stats.Bound, chk.TotalBound)
		if i > 0 && !p.unionAll[i] {
			rows = exec.Dedup(append(rows, ar.Rows...))
		} else {
			rows = append(rows, ar.Rows...)
		}
	}
	res.Rows = rows
	res.Stats.Duration = time.Since(start)
	return res, coverage, nil
}

// Explain returns a human-readable description of how Query would
// evaluate sql: the checker verdict, the deduced bound and the plan.
// Covered plans list, per fetch step, the access constraint, the
// worst-case key/tuple bounds and — with the cost-based optimizer on —
// the statistics-based estimated fetches.
func (db *DB) Explain(sql string) (string, error) {
	return db.ExplainContext(context.Background(), sql)
}

// ExplainContext is Explain under a context: nothing is executed, so ctx
// is consulted once up front, like CheckContext.
func (db *DB) ExplainContext(ctx context.Context, sql string) (string, error) {
	info, err := db.CheckContext(ctx, sql)
	if err != nil {
		return "", err
	}
	var out string
	switch {
	case info.EmptyGuaranteed:
		out = "empty answer guaranteed (contradictory constants); no data access\n"
	case info.Covered:
		out = fmt.Sprintf("boundedly evaluable: fetches at most %d tuples using %d access constraints\nbounded plan:\n%s",
			info.Bound, info.ConstraintsUsed, info.Plan)
	default:
		out = fmt.Sprintf("not covered by the access schema: %s\n%s", info.Reason, info.Plan)
	}
	return out, nil
}
