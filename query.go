package beas

import (
	"context"
	"fmt"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/approx"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/engine"
	"github.com/bounded-eval/beas/internal/exec"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// Baseline identifies a conventional-DBMS emulation profile.
type Baseline string

// Baseline profiles mirroring the paper's comparators.
const (
	BaselinePostgres Baseline = "postgresql"
	BaselineMySQL    Baseline = "mysql"
	BaselineMariaDB  Baseline = "mariadb"
)

func baselineProfile(b Baseline) (engine.Profile, error) {
	switch b {
	case BaselinePostgres, "":
		return engine.ProfilePostgres, nil
	case BaselineMySQL:
		return engine.ProfileMySQL, nil
	case BaselineMariaDB:
		return engine.ProfileMariaDB, nil
	default:
		return engine.Profile{}, fmt.Errorf("beas: unknown baseline %q", b)
	}
}

// parsed is a fully analysed statement: one query per UNION branch.
type parsed struct {
	branches []*analyze.Query
	unionAll []bool // unionAll[i] applies between branch i-1 and i
}

// parse analyses sql through the plan cache, taking the catalog read
// lock for the duration. Callers that go on to execute use parseLocked
// under their own lock instead, so analysis and execution see the same
// catalog.
func (db *DB) parse(sql string) (*parsed, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, _, err := db.parseLocked(sql)
	return p, err
}

// parseLocked parses and analyses sql through the plan cache. The caller
// must hold db.mu (read suffices) and keep holding it while it uses the
// returned analysis.
//
// Holding the lock across the cache lookup, the analysis and the store
// closes the store-after-invalidate race: catalogVersion only advances
// under the write lock, so while we hold the read lock a concurrent DDL
// can neither invalidate the entry we just validated nor slip between
// our version check and our Store — a stale cachedParse can never be
// re-inserted over a newer catalog. It also guarantees the caller
// executes against the same catalog the analysis saw.
func (db *DB) parseLocked(sql string) (*parsed, bool, error) {
	if hit, ok := db.planCache.Load(sql); ok {
		if c := hit.(*cachedParse); c.version == db.catalogVersion {
			db.cacheHits.Add(1)
			return c.p, true, nil
		}
	}
	db.cacheMisses.Add(1)
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, false, err
	}
	p := &parsed{}
	all := false
	for s := stmt; s != nil; s = s.Union {
		q, err := analyze.Analyze(s.Select, db.schema)
		if err != nil {
			return nil, false, err
		}
		p.branches = append(p.branches, q)
		p.unionAll = append(p.unionAll, all)
		all = s.UnionAll
	}
	for i := 1; i < len(p.branches); i++ {
		if len(p.branches[i].Outputs) != len(p.branches[0].Outputs) {
			return nil, false, fmt.Errorf("beas: UNION branches have different arities")
		}
	}
	db.planCache.Store(sql, &cachedParse{version: db.catalogVersion, p: p})
	return p, false, nil
}

// parseSpanLocked is parseLocked under a "parse" span annotated with the
// plan-cache outcome. Callers hold db.mu (read suffices).
func (db *DB) parseSpanLocked(ctx context.Context, sql string) (*parsed, error) {
	_, sp := obs.StartSpan(ctx, "parse")
	p, hit, err := db.parseLocked(sql)
	sp.Set("planCacheHit", hit)
	sp.End()
	return p, err
}

// Check runs the BE Checker: is the query covered by the registered
// access schema, and how much data would a bounded plan fetch? Nothing is
// executed. For UNION queries every branch must be covered; the bound is
// the sum over branches.
func (db *DB) Check(sql string) (*CheckInfo, error) {
	return db.CheckContext(context.Background(), sql)
}

// CheckContext is Check under a context. The checker never touches data
// — it only parses, analyses and walks the access schema — so ctx is
// consulted once up front; an already-cancelled context fails fast
// without taking the catalog lock.
func (db *DB) CheckContext(ctx context.Context, sql string) (*CheckInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, finish := db.startTrace(ctx, "check", sql)
	defer finish()
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := db.parseSpanLocked(ctx, sql)
	if err != nil {
		return nil, err
	}
	info := &CheckInfo{Covered: true, EmptyGuaranteed: true}
	var planText string
	for i, q := range p.branches {
		chk := db.checkSpanLocked(ctx, q)
		if !chk.EmptyGuaranteed {
			info.EmptyGuaranteed = false
		}
		info.Bound = satAdd(info.Bound, chk.TotalBound)
		info.OutputBound = satAdd(info.OutputBound, chk.OutputBound)
		info.ConstraintsUsed += chk.ConstraintsUsed
		if !chk.Covered {
			info.Covered = false
			if info.Reason == "" {
				info.Reason = chk.Reason
			}
			pp, err := core.NewPartialPlan(q, chk)
			if err == nil {
				planText += fmt.Sprintf("branch %d:\n%s", i+1, pp.Describe(q))
			}
			continue
		}
		plan, err := core.NewPlan(q, chk)
		if err != nil {
			return nil, err
		}
		if len(p.branches) > 1 {
			planText += fmt.Sprintf("branch %d:\n", i+1)
		}
		planText += plan.Describe()
	}
	info.Plan = planText
	return info, nil
}

func satAdd(a, b uint64) uint64 {
	if a+b < a {
		return ^uint64(0)
	}
	return a + b
}

// Query evaluates sql, preferring bounded evaluation: a covered query (or
// UNION branch) runs through a bounded plan; otherwise a partially
// bounded plan runs its covered sub-query boundedly and delegates the
// rest to the conventional engine.
func (db *DB) Query(sql string) (*Result, error) {
	return db.query(context.Background(), sql, true)
}

// QueryContext is Query under a context: cancellation or deadline expiry
// halts the fetch loops and streaming joins at the next batch boundary
// and returns ctx's error. The statistics of a cancelled query reflect
// only the work actually performed.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return db.query(ctx, sql, true)
}

// QueryBounded evaluates sql with a bounded plan only, failing when the
// query is not covered by the access schema.
func (db *DB) QueryBounded(sql string) (*Result, error) {
	return db.query(context.Background(), sql, false)
}

// QueryBoundedContext is QueryBounded under a context.
func (db *DB) QueryBoundedContext(ctx context.Context, sql string) (*Result, error) {
	return db.query(ctx, sql, false)
}

func (db *DB) query(ctx context.Context, sql string, allowFallback bool) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, finish := db.startTrace(ctx, "query", sql)
	defer finish()
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := db.parseSpanLocked(ctx, sql)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Columns: p.branches[0].OutputNames(), Stats: Stats{Mode: ModeBounded, Covered: true, Optimized: db.optzr != nil}}
	var rows []value.Row
	for i, q := range p.branches {
		chk := db.checkSpanLocked(ctx, q)
		var branchRows []value.Row
		switch {
		case chk.Covered:
			plan, err := core.NewPlan(q, chk)
			if err != nil {
				return nil, err
			}
			branchRows, err = db.runBounded(ctx, plan, chk, res)
			if err != nil {
				return nil, err
			}
		case allowFallback:
			var err error
			branchRows, err = db.runPartial(ctx, q, chk, res)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("beas: query is not covered by the access schema: %s", chk.Reason)
		}
		if i > 0 && !p.unionAll[i] {
			rows = exec.Dedup(append(rows, branchRows...))
		} else {
			rows = append(rows, branchRows...)
		}
	}
	res.Rows = rows
	res.Stats.Duration = time.Since(start)
	if res.Stats.Mode == ModeBounded && res.Stats.TuplesFetched == 0 && res.Stats.Bound == 0 {
		res.Stats.Mode = ModeEmpty
	}
	return res, nil
}

// runBounded executes a bounded plan — across db.par workers when
// parallelism is on — and folds its statistics into res.
func (db *DB) runBounded(ctx context.Context, plan *core.Plan, chk *core.CheckResult, res *Result) ([]value.Row, error) {
	db.vecPlanLocked(plan)
	ectx, esp := obs.StartSpan(ctx, "execute")
	rows, st, err := core.RunParallelContext(ectx, plan, db.par)
	esp.Set("mode", "bounded").Set("fetched", st.Fetched).Set("rows", st.RowsOut)
	esp.End()
	if err != nil {
		return nil, err
	}
	res.Stats.Bound = satAdd(res.Stats.Bound, chk.TotalBound)
	res.Stats.ConstraintsUsed += chk.ConstraintsUsed
	res.Stats.TuplesFetched += st.Fetched
	for _, s := range st.Steps {
		res.Stats.FetchSteps = append(res.Stats.FetchSteps, StepStat(s))
	}
	res.Stats.Plan += plan.Describe()
	return rows, nil
}

// runPartial executes a partially bounded plan and folds statistics.
func (db *DB) runPartial(ctx context.Context, q *analyze.Query, chk *core.CheckResult, res *Result) ([]value.Row, error) {
	pp, err := core.NewPartialPlan(q, chk)
	if err != nil {
		return nil, err
	}
	ectx, esp := obs.StartSpan(ctx, "execute")
	rows, subStats, engStats, err := core.RunPartialContext(ectx, pp, q, db.fallback, db.par)
	if subStats != nil && engStats != nil {
		esp.Set("mode", "partial").Set("fetched", subStats.Fetched).Set("scanned", engStats.Scanned)
	}
	esp.End()
	if err != nil {
		return nil, err
	}
	res.Stats.Covered = false
	if pp.Sub != nil {
		res.Stats.Mode = ModePartial
	} else {
		res.Stats.Mode = ModeConventional
	}
	res.Stats.TuplesFetched += subStats.Fetched
	res.Stats.TuplesScanned += engStats.Scanned
	for _, s := range subStats.Steps {
		res.Stats.FetchSteps = append(res.Stats.FetchSteps, StepStat(s))
	}
	for _, o := range engStats.Ops {
		res.Stats.Ops = append(res.Stats.Ops, OpStat(o))
	}
	res.Stats.Plan += pp.Describe(q)
	return rows, nil
}

// QueryBaseline evaluates sql purely conventionally under one of the
// emulated DBMS profiles, ignoring the access schema — the comparator of
// the paper's evaluation.
func (db *DB) QueryBaseline(sql string, baseline Baseline) (*Result, error) {
	return db.QueryBaselineContext(context.Background(), sql, baseline)
}

// QueryBaselineContext is QueryBaseline under a context: cancellation
// halts the emulated engine's scans and joins at the next batch boundary.
func (db *DB) QueryBaselineContext(ctx context.Context, sql string, baseline Baseline) (*Result, error) {
	prof, err := baselineProfile(baseline)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, _, err := db.parseLocked(sql)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	eng := engine.New(db.store, prof).WithVectorized(!db.vecOff).WithBatchSize(db.batch)
	res := &Result{Columns: p.branches[0].OutputNames(), Stats: Stats{Mode: ModeConventional}}
	var rows []value.Row
	for i, q := range p.branches {
		branchRows, st, err := eng.RunContext(ctx, q)
		if err != nil {
			return nil, err
		}
		res.Stats.TuplesScanned += st.Scanned
		for _, o := range st.Ops {
			res.Stats.Ops = append(res.Stats.Ops, OpStat(o))
		}
		if i > 0 && !p.unionAll[i] {
			rows = exec.Dedup(append(rows, branchRows...))
		} else {
			rows = append(rows, branchRows...)
		}
	}
	res.Rows = rows
	res.Stats.Plan = eng.Describe(p.branches[0])
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// QueryApprox evaluates a covered query under a budget on the number of
// tuples fetched, returning a subset of the exact answer and a
// deterministic accuracy lower bound (coverage ∈ [0,1]; 1 = exact).
func (db *DB) QueryApprox(sql string, budget int64) (*Result, float64, error) {
	return db.QueryApproxContext(context.Background(), sql, budget)
}

// QueryApproxContext is QueryApprox under a context: cancellation halts
// the budgeted fetch loop and returns ctx's error.
func (db *DB) QueryApproxContext(ctx context.Context, sql string, budget int64) (*Result, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, _, err := db.parseLocked(sql)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	res := &Result{Columns: p.branches[0].OutputNames(), Stats: Stats{Mode: ModeBounded, Covered: true}}
	coverage := 1.0
	remaining := budget
	var rows []value.Row
	for i, q := range p.branches {
		chk := core.Check(q, db.access)
		if !chk.Covered {
			return nil, 0, fmt.Errorf("beas: approximation requires a covered query: %s", chk.Reason)
		}
		plan, err := core.NewPlan(q, chk)
		if err != nil {
			return nil, 0, err
		}
		budgetHere := remaining
		if budgetHere <= 0 {
			budgetHere = 1
		}
		ar, err := approx.RunContext(ctx, plan, budgetHere)
		if err != nil {
			return nil, 0, err
		}
		remaining -= ar.Fetched
		coverage *= ar.Coverage
		res.Stats.TuplesFetched += ar.Fetched
		res.Stats.Bound = satAdd(res.Stats.Bound, chk.TotalBound)
		if i > 0 && !p.unionAll[i] {
			rows = exec.Dedup(append(rows, ar.Rows...))
		} else {
			rows = append(rows, ar.Rows...)
		}
	}
	res.Rows = rows
	res.Stats.Duration = time.Since(start)
	return res, coverage, nil
}

// Explain returns a human-readable description of how Query would
// evaluate sql: the checker verdict, the deduced bound and the plan.
// Covered plans list, per fetch step, the access constraint, the
// worst-case key/tuple bounds and — with the cost-based optimizer on —
// the statistics-based estimated fetches.
func (db *DB) Explain(sql string) (string, error) {
	return db.ExplainContext(context.Background(), sql)
}

// ExplainContext is Explain under a context: nothing is executed, so ctx
// is consulted once up front, like CheckContext.
func (db *DB) ExplainContext(ctx context.Context, sql string) (string, error) {
	info, err := db.CheckContext(ctx, sql)
	if err != nil {
		return "", err
	}
	var out string
	switch {
	case info.EmptyGuaranteed:
		out = "empty answer guaranteed (contradictory constants); no data access\n"
	case info.Covered:
		out = fmt.Sprintf("boundedly evaluable: fetches at most %d tuples using %d access constraints\nbounded plan:\n%s",
			info.Bound, info.ConstraintsUsed, info.Plan)
	default:
		out = fmt.Sprintf("not covered by the access schema: %s\n%s", info.Reason, info.Plan)
	}
	return out, nil
}
