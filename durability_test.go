package beas

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/value"
	"github.com/bounded-eval/beas/internal/wal"
)

// ---------- helpers ----------

// copyDir copies every regular file of src into a fresh directory —
// the moral equivalent of the state a kill -9 would leave behind at
// that instant (the WAL is append-only, so any later crash state is a
// byte-prefix of a later copy).
func copyDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// tableBag returns the table's rows as a sorted multiset of injective
// encodings, so two databases can be compared bit-identically as bags.
func tableBag(t *testing.T, db *DB, table string) []string {
	t.Helper()
	db.mu.RLock()
	defer db.mu.RUnlock()
	tab, ok := db.store.Table(table)
	if !ok {
		return nil
	}
	rows := tab.Rows()
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.Key(r)
	}
	sort.Strings(out)
	return out
}

// requireEqualState asserts got and want are bit-identical: same table
// bags, same constraints (with effective bounds), same index
// footprints, and both conforming.
func requireEqualState(t *testing.T, got, want *DB, context string) {
	t.Helper()
	gt, wt := got.TableNames(), want.TableNames()
	if fmt.Sprint(gt) != fmt.Sprint(wt) {
		t.Fatalf("%s: tables %v, want %v", context, gt, wt)
	}
	for _, name := range wt {
		g, w := tableBag(t, got, name), tableBag(t, want, name)
		if len(g) != len(w) {
			t.Fatalf("%s: table %s has %d rows, want %d", context, name, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: table %s differs at sorted row %d", context, name, i)
			}
		}
	}
	gc, wc := got.Constraints(), want.Constraints()
	sort.Strings(gc)
	sort.Strings(wc)
	if strings.Join(gc, ";") != strings.Join(wc, ";") {
		t.Fatalf("%s: constraints\n got %v\nwant %v", context, gc, wc)
	}
	if gf, wf := got.AccessSchemaFootprint(), want.AccessSchemaFootprint(); gf != wf {
		t.Fatalf("%s: index footprint %d, want %d", context, gf, wf)
	}
	gok, gviol := got.Conforms()
	wok, _ := want.Conforms()
	if gok != wok {
		t.Fatalf("%s: Conforms = %v (%v), want %v", context, gok, gviol, wok)
	}
}

// ---------- randomized workload ----------

// dbOp is one replayable logical operation. Every op appends exactly
// one WAL record when it succeeds, so op k corresponds to LSN k+1 and a
// reopened database's LastLSN says exactly which oracle prefix it must
// equal.
type dbOp struct {
	desc  string
	apply func(*DB) error
}

func opInsert(table string, vals ...any) dbOp {
	return dbOp{
		desc:  fmt.Sprintf("insert %s %v", table, vals),
		apply: func(db *DB) error { return db.Insert(table, vals...) },
	}
}

// genWorkload builds a randomized mixed workload: table creation up
// front, then inserts, deletes, constraint registrations and drops, and
// retightenings. Generation tracks which constraints are registered so
// every op succeeds on replay.
func genWorkload(rng *rand.Rand, n int) []dbOp {
	ops := []dbOp{
		{desc: "create t1", apply: func(db *DB) error {
			return db.CreateTable("t1", "a INT", "b STRING", "c INT")
		}},
		{desc: "create t2", apply: func(db *DB) error {
			return db.CreateTable("t2", "x INT", "y FLOAT")
		}},
	}
	type conSpec struct {
		rel  string
		x, y []string
	}
	cons := []conSpec{
		{"t1", []string{"a"}, []string{"b"}},
		{"t1", []string{"b"}, []string{"c"}},
		{"t1", []string{"a", "b"}, []string{"c"}},
		{"t2", []string{"x"}, []string{"y"}},
	}
	registered := make([]string, len(cons)) // effective spec when registered, "" otherwise
	regCount := 0
	regions := []string{"EDI", "GLA", "NYC", "café", "日本"}
	for len(ops) < n {
		switch r := rng.Float64(); {
		case r < 0.62:
			if rng.Intn(3) == 0 {
				ops = append(ops, opInsert("t2", rng.Intn(40), float64(rng.Intn(100))/4))
			} else {
				ops = append(ops, opInsert("t1", rng.Intn(50), regions[rng.Intn(len(regions))], rng.Intn(30)))
			}
		case r < 0.74:
			key := rng.Intn(50)
			ops = append(ops, dbOp{
				desc:  fmt.Sprintf("delete t1 a=%d", key),
				apply: func(db *DB) error { _, err := db.Delete("t1", map[string]any{"a": key}); return err },
			})
		case r < 0.86:
			i := rng.Intn(len(cons))
			c := cons[i]
			if registered[i] == "" {
				registered[i] = "pending"
				regCount++
				ops = append(ops, dbOp{
					desc: fmt.Sprintf("register %s(%v->%v)", c.rel, c.x, c.y),
					apply: func(db *DB) error {
						// Auto-widen: registration can never fail on
						// cardinality, so the op logs exactly one record
						// on every replay.
						_, err := db.RegisterConstraintAuto(c.rel, c.x, c.y, 1)
						return err
					},
				})
			}
		case r < 0.92:
			if regCount > 0 {
				i := rng.Intn(len(cons))
				if registered[i] != "" {
					registered[i] = ""
					regCount--
					c := cons[i]
					ops = append(ops, dbOp{
						desc: fmt.Sprintf("drop %s(%v->%v)", c.rel, c.x, c.y),
						apply: func(db *DB) error {
							// Find the live spec by ID: N may have widened.
							want := fmt.Sprintf("%s({%s} -> {%s},", c.rel, strings.Join(c.x, ", "), strings.Join(c.y, ", "))
							for _, spec := range db.Constraints() {
								if strings.HasPrefix(spec, want) {
									return db.DropConstraint(spec)
								}
							}
							return fmt.Errorf("no live constraint matching %q", want)
						},
					})
				}
			}
		default:
			// Retighten logs one record even with nothing registered.
			ops = append(ops, dbOp{desc: "retighten", apply: func(db *DB) error {
				if _, err := db.Retighten(); err != nil {
					return err
				}
				return nil
			}})
		}
	}
	return ops
}

// oracleAt replays the first k ops on a fresh in-memory database — the
// never-crashed reference state.
func oracleAt(t *testing.T, ops []dbOp, k int) *DB {
	t.Helper()
	db := NewDB()
	for i := 0; i < k; i++ {
		if err := ops[i].apply(db); err != nil {
			t.Fatalf("oracle op %d (%s): %v", i, ops[i].desc, err)
		}
	}
	return db
}

// ---------- tests ----------

// TestCrashRecoveryProperty is the headline durability property: kill
// the process at any WAL record boundary and beas.Open restores table
// bags and constraint indices bit-identical to a never-crashed run of
// the same logical prefix, with conformance intact. Record boundaries
// are exercised by copying the data directory mid-workload (the WAL is
// append-only, so each copy is exactly the on-disk state after op k);
// the snapshot cadence is set low so cuts land before, between and
// after snapshot+compaction cycles.
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20170514))
	const nOps = 320
	ops := genWorkload(rng, nOps)

	dir := t.TempDir()
	db, err := Open(dir, &Options{SnapshotEvery: 48})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Sample cut points, always including just-after-snapshot border
	// regions and the final op.
	cutSet := map[int]bool{0: true, 46: true, 47: true, 48: true, 49: true, nOps - 1: true}
	for len(cutSet) < 14 {
		cutSet[rng.Intn(nOps)] = true
	}
	cuts := make(map[int]string)
	for i, op := range ops {
		if err := op.apply(db); err != nil {
			t.Fatalf("durable op %d (%s): %v", i, op.desc, err)
		}
		if cutSet[i] {
			cuts[i] = copyDir(t, dir)
		}
	}

	for k, cutDir := range cuts {
		re, err := Open(cutDir, nil)
		if err != nil {
			t.Fatalf("reopening cut after op %d: %v", k, err)
		}
		st := re.Durability()
		if got, want := st.LastLSN, uint64(k+1); got != want {
			t.Fatalf("cut after op %d recovered LastLSN %d, want %d", k, got, want)
		}
		if !st.Recovery.Conforms {
			t.Fatalf("cut after op %d: recovered database does not conform", k)
		}
		oracle := oracleAt(t, ops, k+1)
		requireEqualState(t, re, oracle, fmt.Sprintf("cut after op %d (%s)", k, ops[k].desc))
		// Recovery is idempotent: closing (final snapshot) and reopening
		// must reproduce the same state.
		if err := re.Close(); err != nil {
			t.Fatalf("closing cut %d: %v", k, err)
		}
		re2, err := Open(cutDir, nil)
		if err != nil {
			t.Fatalf("second reopen of cut %d: %v", k, err)
		}
		requireEqualState(t, re2, oracle, fmt.Sprintf("second reopen of cut %d", k))
		re2.Close()
	}
}

// TestTornTailRecovery kills at arbitrary *byte* offsets, not just
// record boundaries: the torn final record must be dropped and the
// database must come back as the longest durable prefix, never fail to
// open, and never resurrect the torn suffix.
func TestTornTailRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := genWorkload(rng, 120)
	dir := t.TempDir()
	// No snapshots: everything stays in one segment so any byte offset
	// is a potential tear point.
	db, err := Open(dir, &Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if err := op.apply(db); err != nil {
			t.Fatalf("op %d: %v", i, op.desc)
		}
	}
	// Abandon db without Close — the files are what a crash leaves.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected one segment, got %v (%v)", segs, err)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		cut := copyDir(t, dir)
		seg := filepath.Join(cut, filepath.Base(segs[0]))
		// Tear at a random byte offset (1 byte cut to half the file).
		tear := info.Size() - 1 - rng.Int63n(info.Size()/2)
		if err := os.Truncate(seg, tear); err != nil {
			t.Fatal(err)
		}
		re, err := Open(cut, nil)
		if err != nil {
			t.Fatalf("trial %d: open after tear at byte %d: %v", trial, tear, err)
		}
		k := int(re.Durability().LastLSN)
		if k > len(ops) {
			t.Fatalf("trial %d: recovered %d records from %d ops", trial, k, len(ops))
		}
		oracle := oracleAt(t, ops, k)
		requireEqualState(t, re, oracle, fmt.Sprintf("tear at byte %d (%d records)", tear, k))
		re.Close()
	}
}

// TestSnapshotReplayEquivalence checks that recovery from snapshot +
// log tail and recovery from the log alone agree on the randomized
// corpus: the snapshot path must not change observable state.
func TestSnapshotReplayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ops := genWorkload(rng, 200)

	logOnly := t.TempDir()
	dbA, err := Open(logOnly, &Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	snappy := t.TempDir()
	dbB, err := Open(snappy, &Options{SnapshotEvery: 31})
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if err := op.apply(dbA); err != nil {
			t.Fatalf("log-only op %d: %v", i, err)
		}
		if err := op.apply(dbB); err != nil {
			t.Fatalf("snapshotting op %d: %v", i, err)
		}
	}
	// Abandon both handles (no Close): recover purely from disk.
	reA, err := Open(logOnly, nil)
	if err != nil {
		t.Fatalf("recovering log-only store: %v", err)
	}
	defer reA.Close()
	reB, err := Open(snappy, nil)
	if err != nil {
		t.Fatalf("recovering snapshotting store: %v", err)
	}
	defer reB.Close()
	if reB.Durability().Recovery.SnapshotLSN == 0 {
		t.Fatal("snapshotting store recovered without a snapshot")
	}
	if reA.Durability().Recovery.SnapshotLSN != 0 {
		t.Fatal("log-only store unexpectedly recovered from a snapshot")
	}
	oracle := oracleAt(t, ops, len(ops))
	requireEqualState(t, reA, oracle, "log-only recovery")
	requireEqualState(t, reB, oracle, "snapshot+tail recovery")
}

// TestDurableBasics exercises the small contract points: queries work
// on recovered state, mutations after Close fail, Snapshot compacts,
// and a second Open sees CSV loads.
func TestDurableBasics(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.Durability().Durable != true {
		t.Fatal("durable database reports Durable=false")
	}
	if NewDB().Durability().Durable {
		t.Fatal("in-memory database reports Durable=true")
	}
	db.MustCreateTable("call", "pnum INT", "region STRING")
	db.MustInsert("call", 1, "EDI")
	db.MustInsert("call", 1, "GLA")
	db.MustInsert("call", 2, "EDI")
	db.MustRegisterConstraint("call({pnum} -> {region}, 2)")
	if err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	db.MustInsert("call", 3, "NYC")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("call", 4, "XXX"); err == nil {
		t.Fatal("insert after Close succeeded")
	}

	re, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n, _ := re.RowCount("call"); n != 4 {
		t.Fatalf("recovered %d rows, want 4", n)
	}
	res, err := re.Query("SELECT region FROM call WHERE pnum = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("query on recovered db returned %d rows, want 2", len(res.Rows))
	}
	if res.Stats.Mode != ModeBounded {
		t.Fatalf("recovered constraint index not used: mode %s", res.Stats.Mode)
	}
	st := re.Durability()
	if st.Recovery.Duration <= 0 {
		t.Error("recovery duration not recorded")
	}
	if st.SnapshotLSN == 0 {
		t.Error("Close did not leave a final snapshot")
	}
}

// TestCloseStopsMutations checks the Close contract on both kinds of
// database: every mutator fails after Close, reads keep working.
func TestCloseStopsMutations(t *testing.T) {
	for _, mk := range []struct {
		name string
		open func(t *testing.T) *DB
	}{
		{"memory", func(t *testing.T) *DB { return NewDB() }},
		{"durable", func(t *testing.T) *DB {
			db, err := Open(t.TempDir(), nil)
			if err != nil {
				t.Fatal(err)
			}
			return db
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			db := mk.open(t)
			db.MustCreateTable("t", "a INT")
			db.MustInsert("t", 1)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if err := db.Insert("t", 2); err == nil {
				t.Error("Insert after Close succeeded")
			}
			if _, err := db.Delete("t", map[string]any{"a": 1}); err == nil {
				t.Error("Delete after Close succeeded")
			}
			if err := db.CreateTable("u", "b INT"); err == nil {
				t.Error("CreateTable after Close succeeded")
			}
			if _, err := db.Retighten(); err == nil {
				t.Error("Retighten after Close succeeded")
			}
			if n, err := db.RowCount("t"); err != nil || n != 1 {
				t.Errorf("read after Close: %d rows, err %v", n, err)
			}
		})
	}
}

// TestDurableLoadCSV checks the bulk-load path: rows are logged with a
// deferred sync and survive a reopen.
func TestDurableLoadCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "call.csv")
	if err := os.WriteFile(csv, []byte("pnum,region\n1,EDI\n2,GLA\n3,café\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreateTable("call", "pnum INT", "region STRING")
	if err := db.LoadCSV("call", csv); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: the load must already be durable.
	re, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	requireEqualState(t, re, db, "reopen after LoadCSV")
	if n, _ := re.RowCount("call"); n != 3 {
		t.Fatalf("recovered %d rows, want 3", n)
	}
}

// TestDurableConcurrentUse hammers a durable database with concurrent
// logged inserts, deletes and streaming queries (run under -race in
// CI): WAL appends serialise under the catalog write lock, so log
// order must equal apply order and the recovered state must match the
// final live state.
func TestDurableConcurrentUse(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{NoSync: true, SnapshotEvery: 97})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreateTable("call", "pnum INT", "region STRING")
	db.MustRegisterConstraint("call({pnum} -> {region}, 64)")
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 150; i++ {
				if err := db.Insert("call", i%40, fmt.Sprintf("r%d", g)); err != nil {
					done <- err
					return
				}
				if i%10 == 9 {
					if _, err := db.Delete("call", map[string]any{"pnum": i % 40, "region": fmt.Sprintf("r%d", g)}); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 60; i++ {
				if _, err := db.Query("SELECT region FROM call WHERE pnum = 7"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	requireEqualState(t, re, db, "recovery after concurrent workload")
}

// ---------- benchmarks ----------

// BenchmarkRecovery measures full database recovery — snapshot load (if
// present), WAL tail replay and constraint index rebuild — for a 10k
// record log with one constraint.
func BenchmarkRecovery(b *testing.B) {
	for _, mode := range []struct {
		name      string
		snapEvery int
	}{
		{"replay10k", -1},   // pure log replay
		{"snapshot10k", -2}, // everything in one snapshot, empty tail
	} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			db, err := Open(dir, &Options{NoSync: true, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			db.MustCreateTable("call", "pnum INT", "recnum INT", "region STRING")
			db.MustRegisterConstraint("call({pnum} -> {recnum, region}, 100)")
			for i := 0; i < 10_000; i++ {
				db.MustInsert("call", i%200, i, "region-"+fmt.Sprint(i%7))
			}
			if mode.snapEvery == -2 {
				if err := db.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
			// Abandon without Close: recovery does the work each time.
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				re, err := Open(dir, &Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				if n, _ := re.RowCount("call"); n != 10_000 {
					b.Fatalf("recovered %d rows", n)
				}
				b.StopTimer()
				re.wal.Close() // release the file handle without snapshotting
				b.StartTimer()
			}
		})
	}
}

// BenchmarkDurableInsert measures the logged insert path end to end
// (record encode + append, no fsync) against the in-memory baseline.
func BenchmarkDurableInsert(b *testing.B) {
	run := func(b *testing.B, db *DB) {
		db.MustCreateTable("call", "pnum INT", "recnum INT", "region STRING")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.MustInsert("call", i%1000, i, "r")
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, NewDB()) })
	b.Run("wal-nosync", func(b *testing.B) {
		db, err := Open(b.TempDir(), &Options{NoSync: true, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		run(b, db)
	})
}

// TestDeleteWALCondOrderDeterministic pins the fix for a
// nondeterministic WAL byte stream: Delete used to build the logged
// Where conjunction by ranging over the caller's map, so the same
// delete produced differently ordered — differently serialised —
// records across runs. The logged conds must come out sorted by column
// name regardless of map iteration order.
func TestDeleteWALCondOrderDeterministic(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreateTable("call", "pnum INT", "recnum INT", "date INT", "region STRING")
	db.MustInsert("call", 1, 2, 3, "EDI")
	if _, err := db.Delete("call", map[string]any{
		"region": "EDI", "pnum": 1, "date": 3, "recnum": 2,
	}); err != nil {
		t.Fatal(err)
	}
	// Copy before Close: Close snapshots and truncates the log, and the
	// assertion is about the record bytes as logged.
	cut := copyDir(t, dir)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	log, rec, err := wal.Open(cut, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	var del *wal.Record
	for _, r := range rec.Records {
		if r.Type == wal.RecDelete {
			del = r
		}
	}
	if del == nil {
		t.Fatal("no delete record recovered from the WAL")
	}
	got := make([]string, len(del.Where))
	for i, c := range del.Where {
		got[i] = c.Col
	}
	want := []string{"date", "pnum", "recnum", "region"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("logged delete conds in order %v, want sorted %v", got, want)
	}
}

// TestDurableCacheRecovery checks the result cache against the
// durability boundary: a database that crashes (or snapshots and
// reopens) with a warm cache must come back serving only answers that
// reflect every pre-crash mutation — never a stale cached entry — while
// the cache itself re-warms on the recovered data.
func TestDurableCacheRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{ResultCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !db.ResultCacheEnabled() {
		t.Fatal("Options.ResultCache did not enable the cache")
	}
	db.MustCreateTable("call", "pnum INT", "region STRING")
	db.MustRegisterConstraint("call({pnum} -> {region}, 10)")
	db.MustInsert("call", 1, "EDI")
	db.MustInsert("call", 1, "GLA")
	db.MustInsert("call", 2, "NYC")

	const sql = "SELECT region FROM call WHERE pnum = 1"
	// warm queries twice and requires both answers current. A mutated
	// entry may legally serve patched on the first query (incremental
	// maintenance); only wantCold forbids a hit — used right after an
	// open, where any hit would mean a stale entry crossed the boundary.
	warm := func(t *testing.T, d *DB, wantRows int, wantCold bool) {
		t.Helper()
		first, err := d.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if wantCold && first.Stats.CacheHit {
			t.Fatal("first query after open must not be a cache hit")
		}
		if len(first.Rows) != wantRows {
			t.Fatalf("query returned %d rows, want %d", len(first.Rows), wantRows)
		}
		second, err := d.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if !second.Stats.CacheHit {
			t.Fatal("repeat query did not warm the cache")
		}
		if len(second.Rows) != wantRows {
			t.Fatalf("cached answer has %d rows, want %d", len(second.Rows), wantRows)
		}
	}
	warm(t, db, 2, true)

	// Mutate past the warm entry, then crash without Close: the copy sees
	// the WAL tail, not a snapshot.
	db.MustInsert("call", 1, "ABZ")
	crashDir := copyDir(t, dir)
	re, err := Open(crashDir, &Options{ResultCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	warm(t, re, 3, true) // the recovered database must see all three rows, cold

	// A post-recovery mutation must displace the re-warmed entry.
	re.MustInsert("call", 1, "INV")
	warm(t, re, 4, false)

	// Snapshot + clean reopen with a warm cache on the original database.
	warm(t, db, 3, false)
	if err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(dir, &Options{ResultCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	warm(t, re2, 3, true)
	re2.MustInsert("call", 1, "DND")
	warm(t, re2, 4, false)
}
